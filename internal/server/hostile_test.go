package server_test

import (
	"encoding/binary"
	"io"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/server/client"
)

// readAllFrames drains a hostile connection until the server closes it,
// returning the error codes of any Error frames seen on the way. The
// read deadline guards against a server that neither answers nor closes.
func readAllFrames(t *testing.T, nc net.Conn) []string {
	t.Helper()
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	var codes []string
	for {
		typ, body, err := server.ReadFrame(nc)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				t.Fatal("server neither answered nor closed the hostile connection")
			}
			return codes
		}
		if typ == server.FrameError {
			d := server.NewDec(body)
			codes = append(codes, d.Str())
		}
	}
}

// assertHealthy proves an independent session still serves.
func assertHealthy(t *testing.T, addr string) {
	t.Helper()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("healthy dial after hostile input: %v", err)
	}
	defer c.Close()
	rows, _, err := c.Query(client.LangSQL, "select R.A from R")
	if err != nil {
		t.Fatalf("healthy query after hostile input: %v", err)
	}
	if len(rows) != 5 {
		t.Fatalf("healthy query rows = %d, want 5", len(rows))
	}
}

// TestHostileByteStreams is the acceptance pin: garbage, truncated, and
// oversized frames to one connection never crash the server process or
// disturb other sessions. A long-lived healthy session runs before,
// between, and after every attack.
func TestHostileByteStreams(t *testing.T) {
	_, addr := startServer(t, testDB(), server.Options{})

	// The long-lived witness session: opened before the attacks, used
	// after every one of them — a hostile stream must not disturb it.
	witness := dial(t, addr)
	witnessOK := func() {
		t.Helper()
		rows, _, err := witness.Query(client.LangSQL, "select R.A from R")
		if err != nil || len(rows) != 5 {
			t.Fatalf("witness session disturbed: rows=%d err=%v", len(rows), err)
		}
	}
	witnessOK()

	attacks := []struct {
		name  string
		bytes func() []byte
	}{
		{"random garbage", func() []byte {
			rng := rand.New(rand.NewSource(1))
			b := make([]byte, 4096)
			rng.Read(b)
			return b
		}},
		{"oversized length prefix", func() []byte {
			// Type Hello, length 0xFFFFFFFF: must be rejected before any
			// allocation.
			b := []byte{server.FrameHello, 0xFF, 0xFF, 0xFF, 0xFF}
			return append(b, make([]byte, 64)...)
		}},
		{"truncated payload", func() []byte {
			// Header promises 100 bytes, delivers 10, then EOF.
			b := []byte{server.FrameHello, 0, 0, 0, 100}
			return append(b, make([]byte, 10)...)
		}},
		{"first frame not hello", func() []byte {
			var e server.Enc
			e.U32(1)
			e.U8(0)
			e.Str("")
			e.Str("select R.A from R")
			var buf []byte
			hdr := []byte{server.FramePrepare, 0, 0, 0, byte(len(e.Bytes()))}
			buf = append(buf, hdr...)
			return append(buf, e.Bytes()...)
		}},
		{"unknown frame type", func() []byte {
			good := helloBytes()
			return append(good, 0x7E, 0, 0, 0, 0)
		}},
		{"bind with lying argc", func() []byte {
			var bind server.Enc
			bind.U32(1)
			bind.U32(1)
			bind.U32(0xFFFFFF) // claims 16M args in a tiny payload
			return append(helloBytes(), frameBytes(server.FrameBind, bind.Bytes())...)
		}},
		{"giant argc preallocation", func() []byte {
			// argc near 2^31 on every arg-carrying frame type: the count
			// must be rejected before the argument slice is allocated, or
			// one 14-byte frame reserves tens of gigabytes of capacity
			// (the FuzzServerFrames OOM).
			var bind server.Enc
			bind.U32(1)
			bind.U32(1)
			bind.U32(0x7FFFFFFF)
			var ex server.Enc
			ex.U32(1)
			ex.U32(0x7FFFFFFF)
			b := append(helloBytes(), frameBytes(server.FrameBind, bind.Bytes())...)
			b = append(b, frameBytes(server.FrameExec, ex.Bytes())...)
			return append(b, frameBytes(server.FrameAnalyze, ex.Bytes())...)
		}},
		{"bind with bad value kind", func() []byte {
			var bind server.Enc
			bind.U32(1)
			bind.U32(1)
			bind.U32(1)
			bind.U8(0x99) // no such value kind
			return append(helloBytes(), frameBytes(server.FrameBind, bind.Bytes())...)
		}},
		{"string overrunning payload", func() []byte {
			var p server.Enc
			p.U32(1)
			p.U8(0)
			p.U32(0xFFFF) // string length far beyond the payload
			return append(helloBytes(), frameBytes(server.FramePrepare, p.Bytes())...)
		}},
		{"mid-frame hangup", func() []byte {
			// A valid hello then half a Prepare header.
			return append(helloBytes(), server.FramePrepare, 0, 0)
		}},
	}
	for _, a := range attacks {
		t.Run(a.name, func(t *testing.T) {
			nc, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			defer nc.Close()
			if _, err := nc.Write(a.bytes()); err != nil {
				t.Fatal(err)
			}
			// Half-close so the server sees EOF after the attack bytes.
			if tc, ok := nc.(*net.TCPConn); ok {
				tc.CloseWrite()
			}
			readAllFrames(t, nc)
			witnessOK()            // the pre-existing session is undisturbed
			assertHealthy(t, addr) // and new sessions still connect
		})
	}
}

// helloBytes encodes a valid Hello frame.
func helloBytes() []byte {
	var h server.Enc
	h.U32(server.ProtocolVersion)
	h.Str("attacker")
	return frameBytes(server.FrameHello, h.Bytes())
}

// frameBytes wraps a payload in a frame header.
func frameBytes(typ byte, payload []byte) []byte {
	b := make([]byte, 5, 5+len(payload))
	b[0] = typ
	binary.BigEndian.PutUint32(b[1:], uint32(len(payload)))
	return append(b, payload...)
}

// TestHostileKeepsProtocolErrorMetrics pins that attacks are visible to
// the operator through the metrics counters.
func TestHostileKeepsProtocolErrorMetrics(t *testing.T) {
	srv, addr := startServer(t, testDB(), server.Options{})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.Write([]byte{0x7E, 0xFF, 0xFF, 0xFF, 0xFF})
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
	io.Copy(io.Discard, nc)
	if got := srv.Metrics().ProtocolErrors.Load(); got == 0 {
		t.Fatal("ProtocolErrors = 0 after a malformed frame")
	}
}

// TestOversizedRowIsStatementError pins the frame-limit edge: a single
// row too large for any frame fails that fetch with a structured FETCH
// error — the response stream stays in sync and the session survives.
func TestOversizedRowIsStatementError(t *testing.T) {
	wide := relation.New("Wide", "S")
	wide.Add(strings.Repeat("x", 2<<20)) // one 2 MiB string > MaxFrame
	wide.Add("small")
	_, addr := startServer(t, engine.Open(wide, smallR()), server.Options{})
	c := dial(t, addr)
	stmt, err := c.Prepare(client.LangSQL, "select Wide.S from Wide")
	if err != nil {
		t.Fatal(err)
	}
	_, err = stmt.QueryAll()
	we, ok := err.(*server.WireError)
	if !ok || we.Code != server.CodeFetch {
		t.Fatalf("oversized row error = %v, want FETCH WireError", err)
	}
	// Same session keeps serving smaller results.
	rows, _, err := c.Query(client.LangSQL, "select R.A from R")
	if err != nil || len(rows) != 5 {
		t.Fatalf("session after oversized row: rows=%d err=%v", len(rows), err)
	}
}

// smallR builds the 5-row R table used by the healthy-session probes.
func smallR() *relation.Relation {
	r := relation.New("R", "A", "B")
	for i := 1; i <= 5; i++ {
		r.Add(i, i*10)
	}
	return r
}

// TestCursorCapAllowsRebind pins that per-session caps gate only NEW
// handles: rebinding an existing cursor id at the cap must succeed.
func TestCursorCapAllowsRebind(t *testing.T) {
	_, addr := startServer(t, engine.Open(smallR()), server.Options{MaxCursors: 2})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	hello(t, nc)
	var p server.Enc
	p.U32(1)
	p.U8(server.WireLangSQL)
	p.Str("")
	p.Str("select R.A from R")
	send(t, nc, server.FramePrepare, p.Bytes())
	if typ, _, err := server.ReadFrame(nc); err != nil || typ != server.FramePrepareOK {
		t.Fatalf("prepare: typ=0x%02x err=%v", typ, err)
	}
	bind := func(curID uint32, wantOK bool) {
		t.Helper()
		var b server.Enc
		b.U32(curID)
		b.U32(1)
		b.U32(0)
		send(t, nc, server.FrameBind, b.Bytes())
		typ, _, err := server.ReadFrame(nc)
		if err != nil {
			t.Fatal(err)
		}
		if wantOK && typ != server.FrameBindOK {
			t.Fatalf("bind cursor %d: frame 0x%02x, want BindOK", curID, typ)
		}
		if !wantOK && typ != server.FrameError {
			t.Fatalf("bind cursor %d: frame 0x%02x, want Error", curID, typ)
		}
	}
	bind(1, true)
	bind(2, true)  // at the cap
	bind(1, true)  // rebind of an existing id must still work
	bind(3, false) // a genuinely new cursor is refused
}

package sql2arc

import (
	"strings"
	"testing"

	"repro/internal/convention"
	"repro/internal/eval"
	"repro/internal/relation"
	"repro/internal/sqleval"
)

// check translates src, evaluates it with the ARC evaluator, evaluates
// the original with the independent SQL evaluator, and requires matching
// results. bag selects bag-level comparison.
func check(t *testing.T, src string, rels []*relation.Relation, bag bool) {
	t.Helper()
	col, err := TranslateString(src)
	if err != nil {
		t.Fatalf("translate %q: %v", src, err)
	}
	cat := eval.NewCatalog()
	db := sqleval.DB{}
	for _, r := range rels {
		cat.AddRelation(r)
		db[r.Name()] = r
	}
	conv := convention.SQL()
	if !bag {
		conv = convention.SQLDistinct()
	}
	got, err := eval.Eval(col, cat, conv)
	if err != nil {
		t.Fatalf("arc eval of %q: %v\nALT:\n%s", src, err, col)
	}
	want, err := sqleval.EvalString(src, db)
	if err != nil {
		t.Fatalf("sql eval of %q: %v", src, err)
	}
	if bag {
		if !got.EqualBag(want) {
			t.Fatalf("bag mismatch for %q:\narc\n%s\nsql\n%s\nALT: %s", src, got, want, col)
		}
	} else if !got.EqualSet(want) {
		t.Fatalf("set mismatch for %q:\narc\n%s\nsql\n%s\nALT: %s", src, got, want, col)
	}
}

func TestBasicSelect(t *testing.T) {
	rels := []*relation.Relation{
		relation.New("R", "A", "B").Add(1, 10).Add(2, 20).Add(3, 30),
		relation.New("S", "B", "C").Add(10, 0).Add(20, 5).Add(30, 0),
	}
	check(t, "select R.A from R, S where R.B = S.B and S.C = 0", rels, true)
	check(t, "select R.A, S.C from R, S where R.B = S.B", rels, true)
	check(t, "select distinct S.C from S", rels, true)
}

func TestGroupByHaving(t *testing.T) {
	rels := []*relation.Relation{
		relation.New("R", "empl", "dept").Add("e1", "d1").Add("e2", "d1").Add("e3", "d2"),
		relation.New("S", "empl", "sal").Add("e1", 60).Add("e2", 70).Add("e3", 40),
	}
	// Fig 6a.
	check(t, `select R.dept, avg(S.sal) av from R, S
		where R.empl = S.empl group by R.dept having sum(S.sal) > 100`, rels, true)
	check(t, `select R.dept, count(R.empl) c from R group by R.dept`, rels, true)
}

func TestFig4GroupedAggregate(t *testing.T) {
	rels := []*relation.Relation{
		relation.New("R", "A", "B").Add(1, 10).Add(1, 20).Add(2, 5),
	}
	check(t, "select R.A, sum(R.B) sm from R group by R.A", rels, true)
}

func TestImplicitGrouping(t *testing.T) {
	rels := []*relation.Relation{relation.New("R", "A").Add(1).Add(2)}
	check(t, "select count(*) c, sum(R.A) s from R", rels, true)
	// Over an empty table the single group must still emit one row.
	check(t, "select count(*) c, sum(R.A) s from R",
		[]*relation.Relation{relation.New("R", "A")}, true)
}

func TestScalarSubqueryCountBug(t *testing.T) {
	// Fig 21, all three versions, on the bug-revealing instance.
	rels := []*relation.Relation{
		relation.New("R", "id", "q").Add(9, 0),
		relation.New("S", "id", "d"),
	}
	check(t, `select R.id from R where R.q = (select count(S.d) from S where S.id = R.id)`, rels, true)
	check(t, `select R.id from R,
		(select S.id, count(S.d) as ct from S group by S.id) as X
		where R.q = X.ct and R.id = X.id`, rels, true)
	check(t, `select R.id from R,
		(select R2.id, count(S.d) as ct from R R2 left join S on R2.id = S.id group by R2.id) as X
		where R.q = X.ct and R.id = X.id`, rels, true)
}

func TestFig5ScalarAndLateral(t *testing.T) {
	rels := []*relation.Relation{
		relation.New("R", "A", "B").Add(1, 10).Add(1, 20).Add(2, 5),
	}
	check(t, `select distinct R.A, (select sum(R2.B) sm from R R2 where R2.A = R.A) from R`, rels, true)
	check(t, `select distinct R.A, X.sm from R join lateral
		(select sum(R2.B) sm from R R2 where R2.A = R.A) X on true`, rels, true)
}

func TestFig3Lateral(t *testing.T) {
	rels := []*relation.Relation{
		relation.New("X", "A").Add(1).Add(5),
		relation.New("Y", "A").Add(3).Add(7),
	}
	check(t, `select x.A, z.B from X as x
		join lateral (select y.A as B from Y as y where x.A < y.A) as z on true`, rels, true)
}

func TestNotInTranslation(t *testing.T) {
	rels := []*relation.Relation{
		relation.New("R", "A").Add(1).Add(2).Add(3),
		relation.New("S", "A").Add(2),
	}
	check(t, "select R.A from R where R.A not in (select S.A from S)", rels, true)
	check(t, "select R.A from R where R.A in (select S.A from S)", rels, true)
	// With NULL in S the NOT IN result must be empty in both evaluators.
	relsNull := []*relation.Relation{
		relation.New("R", "A").Add(1).Add(2).Add(3),
		relation.New("S", "A").Add(2).Add(nil),
	}
	check(t, "select R.A from R where R.A not in (select S.A from S)", relsNull, true)
	check(t, "select R.A from R where not (R.A in (select S.A from S))", relsNull, true)
}

func TestExistsTranslation(t *testing.T) {
	rels := []*relation.Relation{
		relation.New("R", "A", "B").Add(1, 10).Add(2, 99),
		relation.New("S", "B", "C").Add(10, 0),
	}
	check(t, "select R.A from R where exists (select 1 from S where S.B = R.B)", rels, true)
	check(t, "select R.A from R where not exists (select 1 from S where S.B = R.B)", rels, true)
}

func TestUniqueSetQueryTranslation(t *testing.T) {
	rels := []*relation.Relation{
		relation.New("Likes", "drinker", "beer").
			Add("d1", "b1").Add("d1", "b2").
			Add("d2", "b1").Add("d2", "b2").
			Add("d3", "b1"),
	}
	check(t, `select distinct L1.drinker from Likes L1
	where not exists
	  (select 1 from Likes L2
	   where L1.drinker <> L2.drinker
	   and not exists
	     (select 1 from Likes L3
	      where L3.drinker = L2.drinker
	      and not exists
	        (select 1 from Likes L4
	         where L4.drinker = L1.drinker and L4.beer = L3.beer))
	   and not exists
	     (select 1 from Likes L5
	      where L5.drinker = L1.drinker
	      and not exists
	        (select 1 from Likes L6
	         where L6.drinker = L2.drinker and L6.beer = L5.beer)))`, rels, true)
}

func TestLeftJoinTranslation(t *testing.T) {
	rels := []*relation.Relation{
		relation.New("R", "m", "y", "h").Add("r1", 1, 11).Add("r2", 2, 11).Add("r3", 3, 99),
		relation.New("S", "y", "n", "q").Add(1, "n1", 0).Add(3, "n3", 0),
	}
	// Fig 12a with its constant ON condition.
	check(t, `select R.m, S.n from R left outer join S on (R.h = 11 and R.y = S.y)`, rels, true)
	check(t, `select R.m, S.n from R left join S on R.y = S.y`, rels, true)
}

func TestFullJoinTranslation(t *testing.T) {
	rels := []*relation.Relation{
		relation.New("R", "a").Add(1).Add(2),
		relation.New("S", "b").Add(2).Add(3),
	}
	check(t, "select R.a, S.b from R full join S on R.a = S.b", rels, true)
}

func TestUnionTranslation(t *testing.T) {
	rels := []*relation.Relation{
		relation.New("R", "A").Add(1).Add(2),
		relation.New("S", "A").Add(2).Add(3),
	}
	check(t, "select R.A from R union select S.A from S", rels, true)
	check(t, "select R.A from R union all select S.A from S", rels, true)
}

func TestBagMultiplicities(t *testing.T) {
	rels := []*relation.Relation{
		relation.New("R", "A", "B").Add(1, 10).Add(1, 10).Add(2, 20),
		relation.New("S", "B").Add(10).Add(10),
	}
	check(t, "select R.A from R, S where R.B = S.B", rels, true)
	check(t, "select distinct R.A from R, S where R.B = S.B", rels, true)
}

func TestFig13BagCounterexample(t *testing.T) {
	// The three Fig 13 forms, each translated and checked against the SQL
	// evaluator under bag semantics (including the duplicate-R instance).
	rels := []*relation.Relation{
		relation.New("R", "A").Add(1).Add(1),
		relation.New("S", "A", "B").Add(0, 7),
	}
	check(t, `select R.A, (select sum(S.B) sm from S where S.A < R.A) from R`, rels, true)
	check(t, `select R.A, X.sm from R join lateral
		(select sum(S.B) sm from S where S.A < R.A) X on true`, rels, true)
	check(t, `select R.A, sum(S.B) sm from R left join S on S.A < R.A group by R.A`, rels, true)
}

func TestArithmeticTranslation(t *testing.T) {
	rels := []*relation.Relation{
		relation.New("R", "A", "B").Add("x", 10).Add("y", 3),
		relation.New("S", "B").Add(4),
		relation.New("T", "B").Add(5),
	}
	check(t, "select R.A from R, S, T where R.B - S.B > T.B", rels, true)
}

func TestTranslateErrors(t *testing.T) {
	cases := map[string]string{
		"select A from R": "unqualified",
		"select sum(R.A) s from R group by R.A + 1": "GROUP BY",
		"select (select S.A from S) from R":         "single-valued",
	}
	for src, want := range cases {
		_, err := TranslateString(src)
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("%q: got %v, want error containing %q", src, err, want)
		}
	}
}

func TestTreeShapeFOI(t *testing.T) {
	// Fig 5a should translate to the lateral FOI pattern: a nested
	// collection with γ∅ inside the outer scope.
	col, err := TranslateString(`select distinct R.A,
		(select sum(R2.B) sm from R R2 where R2.A = R.A) from R`)
	if err != nil {
		t.Fatal(err)
	}
	s := col.String()
	if !strings.Contains(s, "γ ∅") {
		t.Errorf("expected γ∅ in the hoisted scalar collection:\n%s", s)
	}
}

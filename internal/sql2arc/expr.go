package sql2arc

import (
	"fmt"

	"repro/internal/alt"
	"repro/internal/sql"
)

// boolExpr translates a boolean SQL expression into an ARC formula,
// hoisting scalar subqueries into lateral bindings of the current scope.
func (tr *translator) boolExpr(e sql.Expr, sp *scopeParts) (alt.Formula, error) {
	switch x := e.(type) {
	case *sql.AndE:
		var kids []alt.Formula
		for _, k := range x.Kids {
			f, err := tr.boolExpr(k, sp)
			if err != nil {
				return nil, err
			}
			kids = append(kids, f)
		}
		return alt.AndF(kids...), nil
	case *sql.OrE:
		var kids []alt.Formula
		for _, k := range x.Kids {
			f, err := tr.boolExpr(k, sp)
			if err != nil {
				return nil, err
			}
			kids = append(kids, f)
		}
		return alt.OrF(kids...), nil
	case *sql.NotE:
		// NOT (x IN q) gets the null-aware NOT IN treatment.
		if in, ok := x.Kid.(*sql.InE); ok {
			flipped := *in
			flipped.Negated = !in.Negated
			return tr.boolExpr(&flipped, sp)
		}
		f, err := tr.boolExpr(x.Kid, sp)
		if err != nil {
			return nil, err
		}
		return alt.NotF(f), nil
	case *sql.Cmp:
		l, err := tr.scalarExpr(x.L, sp)
		if err != nil {
			return nil, err
		}
		r, err := tr.scalarExpr(x.R, sp)
		if err != nil {
			return nil, err
		}
		return &alt.Pred{Left: l, Op: x.Op, Right: r}, nil
	case *sql.IsNullE:
		t, err := tr.scalarExpr(x.Arg, sp)
		if err != nil {
			return nil, err
		}
		return &alt.IsNull{Arg: t, Negated: x.Negated}, nil
	case *sql.Exists:
		q, err := tr.existsScope(x.Query, nil)
		if err != nil {
			return nil, err
		}
		if x.Negated {
			return alt.NotF(q), nil
		}
		return q, nil
	case *sql.InE:
		return tr.inExpr(x, sp)
	case *sql.Lit:
		// Boolean literal conditions (ON TRUE already removed by parser).
		return nil, fmt.Errorf("sql2arc: literal %s in boolean context", x.Val)
	}
	return nil, fmt.Errorf("sql2arc: cannot translate %T as a condition", e)
}

// inExpr translates [NOT] IN per Section 2.10: NOT IN becomes NOT EXISTS
// with explicit IS NULL checks on both sides (query (17)); plain IN
// becomes a simple existential.
func (tr *translator) inExpr(x *sql.InE, sp *scopeParts) (alt.Formula, error) {
	lhs, err := tr.scalarExpr(x.Left, sp)
	if err != nil {
		return nil, err
	}
	sel, ok := x.Query.(*sql.Select)
	if !ok {
		return nil, fmt.Errorf("sql2arc: IN over UNION subqueries is not supported")
	}
	if len(sel.Items) != 1 {
		return nil, fmt.Errorf("sql2arc: IN subquery must return one column")
	}
	inner := &scopeParts{}
	for _, ref := range sel.From {
		if err := tr.tableRef(ref, inner); err != nil {
			return nil, err
		}
	}
	var conjs []alt.Formula
	if sel.Where != nil {
		w, err := tr.boolExpr(sel.Where, inner)
		if err != nil {
			return nil, err
		}
		conjs = append(conjs, w)
	}
	item, err := tr.scalarExpr(sel.Items[0].Expr, inner)
	if err != nil {
		return nil, err
	}
	if x.Negated {
		match := alt.OrF(
			alt.Eq(item, lhs),
			alt.Null(item),
			alt.Null(lhs),
		)
		conjs = append(conjs, match)
		q := alt.Exists(inner.bindings, alt.AndF(conjs...))
		q.Join = inner.join
		return alt.NotF(q), nil
	}
	conjs = append(conjs, alt.Eq(item, lhs))
	q := alt.Exists(inner.bindings, alt.AndF(conjs...))
	q.Join = inner.join
	return q, nil
}

// existsScope translates an EXISTS subquery into a bare quantifier (the
// select list is irrelevant). extra appends additional conjuncts.
func (tr *translator) existsScope(q sql.Query, extra []alt.Formula) (alt.Formula, error) {
	sel, ok := q.(*sql.Select)
	if !ok {
		return nil, fmt.Errorf("sql2arc: EXISTS over UNION subqueries is not supported")
	}
	if len(sel.GroupBy) > 0 || sel.Having != nil {
		return nil, fmt.Errorf("sql2arc: EXISTS over grouped subqueries is not supported")
	}
	inner := &scopeParts{}
	for _, ref := range sel.From {
		if err := tr.tableRef(ref, inner); err != nil {
			return nil, err
		}
	}
	conjs := append([]alt.Formula{}, extra...)
	if sel.Where != nil {
		w, err := tr.boolExpr(sel.Where, inner)
		if err != nil {
			return nil, err
		}
		conjs = append(conjs, w)
	}
	qf := alt.Exists(inner.bindings, alt.AndF(conjs...))
	qf.Join = inner.join
	return qf, nil
}

// scalarExpr translates a scalar SQL expression into an ARC term,
// hoisting scalar subqueries into lateral bindings (Section 2.12).
func (tr *translator) scalarExpr(e sql.Expr, sp *scopeParts) (alt.Term, error) {
	switch x := e.(type) {
	case *sql.Lit:
		return alt.CVal(x.Val), nil
	case *sql.ColRef:
		if x.Table == "" {
			return nil, fmt.Errorf("sql2arc: unqualified column %q (qualify with a table alias)", x.Column)
		}
		return alt.Ref(x.Table, x.Column), nil
	case *sql.BinE:
		l, err := tr.scalarExpr(x.L, sp)
		if err != nil {
			return nil, err
		}
		r, err := tr.scalarExpr(x.R, sp)
		if err != nil {
			return nil, err
		}
		var op alt.ArithOp
		switch x.Op {
		case '+':
			op = alt.OpAdd
		case '-':
			op = alt.OpSub
		case '*':
			op = alt.OpMul
		case '/':
			op = alt.OpDiv
		default:
			return nil, fmt.Errorf("sql2arc: unknown operator %q", string(x.Op))
		}
		return &alt.Arith{Op: op, L: l, R: r}, nil
	case *sql.FuncE:
		if x.Star {
			if x.Name != "count" {
				return nil, fmt.Errorf("sql2arc: %s(*) is not valid", x.Name)
			}
			// count(*) over the scope: count any attribute of the first
			// binding is wrong in the presence of NULLs; ARC has no row
			// counter, so count(*) needs a non-null witness. We use the
			// constant 1 — count over a constant term counts rows.
			return alt.Count(alt.CInt(1)), nil
		}
		arg, err := tr.scalarExpr(x.Arg, sp)
		if err != nil {
			return nil, err
		}
		fn, ok := alt.AggFuncByName(x.Name)
		if !ok {
			return nil, fmt.Errorf("sql2arc: unknown aggregate %q", x.Name)
		}
		if x.Distinct {
			if fn != alt.AggCount {
				return nil, fmt.Errorf("sql2arc: DISTINCT is supported for count only")
			}
			fn = alt.AggCountDistinct
		}
		return &alt.Agg{Func: fn, Arg: arg}, nil
	case *sql.Scalar:
		return tr.hoistScalar(x, sp)
	}
	return nil, fmt.Errorf("sql2arc: cannot translate %T as a scalar", e)
}

// hoistScalar converts a scalar subquery into a lateral binding of the
// current scope and returns the reference to its single output attribute
// (Section 2.12: any single-valued head aggregate can be rewritten as a
// lateral join in the body).
func (tr *translator) hoistScalar(x *sql.Scalar, sp *scopeParts) (alt.Term, error) {
	sel, ok := x.Query.(*sql.Select)
	if !ok {
		return nil, fmt.Errorf("sql2arc: scalar UNION subqueries are not supported")
	}
	if len(sel.Items) != 1 {
		return nil, fmt.Errorf("sql2arc: scalar subquery must return one column")
	}
	if !selectHasAggregate(sel) {
		return nil, fmt.Errorf("sql2arc: only single-valued (aggregate) scalar subqueries are supported; rewrite %s as a join", x)
	}
	name := strings_Title(tr.gensym("sc"))
	col, err := tr.selectQuery(sel, name)
	if err != nil {
		return nil, err
	}
	v := tr.gensym("x")
	sp.bindings = append(sp.bindings, alt.BindSub(v, col))
	if sp.join != nil {
		sp.join = alt.Inner(sp.join, alt.JV(v))
	}
	return alt.Ref(v, col.Head.Attrs[0]), nil
}

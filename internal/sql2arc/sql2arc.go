// Package sql2arc translates the SQL subset of internal/sql into ARC
// Abstract Language Trees, applying the paper's canonical encodings:
//
//   - scalar subqueries become lateral bindings (Section 2.12, Fig 13d);
//   - NOT IN becomes NOT EXISTS with explicit null checks (Section 2.10,
//     query (17));
//   - GROUP BY / HAVING / implicit aggregation become grouping scopes with
//     aggregate assignment and comparison predicates (Section 2.5);
//   - DISTINCT becomes deduplication via grouping on all head attributes
//     (Section 2.7);
//   - LEFT/FULL OUTER JOIN becomes a join annotation; ON conditions that
//     reference only the non-nullable side against a constant are encoded
//     with constant join leaves, the device of Section 2.11 / Fig 12;
//   - UNION becomes disjunction (Section 2.8).
package sql2arc

import (
	"fmt"

	"repro/internal/alt"
	"repro/internal/sql"
)

// Translate converts a SQL query into a strict ARC collection named "Q".
func Translate(q sql.Query) (*alt.Collection, error) {
	return TranslateNamed(q, "Q")
}

// TranslateNamed converts a SQL query into an ARC collection with the
// given head relation name.
func TranslateNamed(q sql.Query, name string) (*alt.Collection, error) {
	tr := &translator{}
	col, err := tr.query(q, name)
	if err != nil {
		return nil, err
	}
	if _, err := alt.ValidateCollection(col); err != nil {
		return nil, fmt.Errorf("sql2arc produced an invalid ALT: %w", err)
	}
	return col, nil
}

// TranslateString parses and translates a SQL string.
func TranslateString(src string) (*alt.Collection, error) {
	q, err := sql.Parse(src)
	if err != nil {
		return nil, err
	}
	return Translate(q)
}

type translator struct {
	fresh int
}

func (tr *translator) gensym(prefix string) string {
	tr.fresh++
	return fmt.Sprintf("%s%d", prefix, tr.fresh)
}

func (tr *translator) query(q sql.Query, name string) (*alt.Collection, error) {
	switch x := q.(type) {
	case *sql.Select:
		return tr.selectQuery(x, name)
	case *sql.Union:
		return tr.union(x, name)
	}
	return nil, fmt.Errorf("sql2arc: unknown query node %T", q)
}

// union translates UNION [ALL] into disjunction; plain UNION adds a
// deduplication wrapper (grouping on all head attributes).
func (tr *translator) union(u *sql.Union, name string) (*alt.Collection, error) {
	flat, all := flattenUnion(u)
	var branches []alt.Formula
	var attrs []string
	for i, s := range flat {
		inner := tr.gensym("u")
		col, err := tr.selectQuery(s, name)
		if err != nil {
			return nil, err
		}
		_ = inner
		if i == 0 {
			attrs = col.Head.Attrs
		} else if len(col.Head.Attrs) != len(attrs) {
			return nil, fmt.Errorf("sql2arc: UNION arity mismatch")
		} else {
			// Rename later branches' head attributes to the first's.
			col = renameHead(col, attrs)
		}
		branches = append(branches, col.Body)
	}
	col := alt.Col(name, attrs, alt.OrF(branches...))
	if !all {
		return tr.dedupWrap(col), nil
	}
	return col, nil
}

func flattenUnion(q sql.Query) ([]*sql.Select, bool) {
	switch x := q.(type) {
	case *sql.Select:
		return []*sql.Select{x}, true
	case *sql.Union:
		l, _ := flattenUnion(x.Left)
		r, _ := flattenUnion(x.Right)
		return append(l, r...), x.All
	}
	return nil, true
}

// renameHead rewrites a collection's head attribute names (and the head
// references in assignment predicates) to the given names.
func renameHead(col *alt.Collection, attrs []string) *alt.Collection {
	old := col.Head.Attrs
	ren := map[string]string{}
	for i, a := range old {
		ren[a] = attrs[i]
	}
	alt.Walk(col.Body, func(f alt.Formula) {
		p, ok := f.(*alt.Pred)
		if !ok {
			return
		}
		for _, side := range []alt.Term{p.Left, p.Right} {
			if r, ok := side.(*alt.AttrRef); ok && r.Var == col.Head.Rel {
				if n, ok := ren[r.Attr]; ok {
					r.Attr = n
				}
			}
		}
	})
	col.Head.Attrs = attrs
	return col
}

// dedupWrap wraps a collection with γ over all head attributes — the
// paper's DISTINCT encoding (Section 2.7).
func (tr *translator) dedupWrap(inner *alt.Collection) *alt.Collection {
	name := inner.Head.Rel
	innerName := name + "_all"
	inner.Head.Rel = innerName
	alt.Walk(inner.Body, func(f alt.Formula) {
		p, ok := f.(*alt.Pred)
		if !ok {
			return
		}
		for _, side := range []alt.Term{p.Left, p.Right} {
			if r, ok := side.(*alt.AttrRef); ok && r.Var == name {
				r.Var = innerName
			}
		}
	})
	v := tr.gensym("d")
	keys := make([]*alt.AttrRef, len(inner.Head.Attrs))
	var asg []alt.Formula
	for i, a := range inner.Head.Attrs {
		keys[i] = alt.Ref(v, a)
		asg = append(asg, alt.Eq(alt.Ref(name, a), alt.Ref(v, a)))
	}
	return alt.Col(name, inner.Head.Attrs,
		alt.ExistsG([]*alt.Binding{alt.BindSub(v, inner)}, keys, alt.AndF(asg...)))
}

// scopeParts is the working state for one SELECT scope being translated.
type scopeParts struct {
	bindings []*alt.Binding
	join     alt.JoinExpr
	conjs    []alt.Formula
}

// selectQuery translates one SELECT block into a collection. ORDER BY is
// dropped: the paper places sorted lists outside the flat relational
// core (Section 5), so ordering does not affect the relational pattern;
// use sqleval.EvalOrdered for ordered presentation.
func (tr *translator) selectQuery(s *sql.Select, name string) (*alt.Collection, error) {
	sp := &scopeParts{}
	for _, ref := range s.From {
		if err := tr.tableRef(ref, sp); err != nil {
			return nil, err
		}
	}
	if s.Where != nil {
		f, err := tr.boolExpr(s.Where, sp)
		if err != nil {
			return nil, err
		}
		sp.conjs = append(sp.conjs, f)
	}

	grouped := len(s.GroupBy) > 0 || s.Having != nil || selectHasAggregate(s)
	var attrs []string
	var headAsg []alt.Formula
	for i, it := range s.Items {
		attrs = append(attrs, it.OutName(i))
	}
	for i, it := range s.Items {
		t, err := tr.scalarExpr(it.Expr, sp)
		if err != nil {
			return nil, err
		}
		headAsg = append(headAsg, alt.Eq(alt.Ref(name, attrs[i]), t))
	}

	var body alt.Formula
	if len(sp.bindings) == 0 {
		if grouped {
			return nil, fmt.Errorf("sql2arc: aggregates without FROM are not supported")
		}
		body = alt.AndF(append(sp.conjs, headAsg...)...)
	} else if grouped {
		var keys []*alt.AttrRef
		for _, g := range s.GroupBy {
			cr, ok := g.(*sql.ColRef)
			if !ok || cr.Table == "" {
				return nil, fmt.Errorf("sql2arc: GROUP BY supports qualified column references only, got %s", g)
			}
			keys = append(keys, alt.Ref(cr.Table, cr.Column))
		}
		conjs := append([]alt.Formula{}, sp.conjs...)
		if s.Having != nil {
			h, err := tr.boolExpr(s.Having, sp)
			if err != nil {
				return nil, err
			}
			conjs = append(conjs, h)
		}
		conjs = append(conjs, headAsg...)
		q := alt.ExistsG(sp.bindings, keys, alt.AndF(conjs...))
		q.Join = sp.join
		body = q
	} else {
		q := alt.Exists(sp.bindings, alt.AndF(append(sp.conjs, headAsg...)...))
		q.Join = sp.join
		body = q
	}
	col := alt.Col(name, attrs, body)
	if s.Distinct {
		col = tr.dedupWrap(col)
	}
	return col, nil
}

func selectHasAggregate(s *sql.Select) bool {
	found := false
	var walk func(e sql.Expr)
	walk = func(e sql.Expr) {
		switch x := e.(type) {
		case *sql.FuncE:
			found = true
		case *sql.BinE:
			walk(x.L)
			walk(x.R)
		case *sql.Cmp:
			walk(x.L)
			walk(x.R)
		}
	}
	for _, it := range s.Items {
		walk(it.Expr)
	}
	return found
}

// tableRef translates a FROM item into bindings, a join annotation, and
// condition conjuncts.
func (tr *translator) tableRef(ref sql.TableRef, sp *scopeParts) error {
	leaf, err := tr.joinTree(ref, sp)
	if err != nil {
		return err
	}
	switch {
	case sp.join == nil && isPlainLeafOrInner(leaf):
		// No annotation needed for plain inner content.
	case sp.join == nil:
		sp.join = leaf
	default:
		sp.join = alt.Inner(sp.join, leaf)
	}
	return nil
}

func isPlainLeafOrInner(j alt.JoinExpr) bool {
	switch x := j.(type) {
	case *alt.JoinVar:
		return true
	case *alt.JoinOp:
		if x.Kind != alt.JoinInner {
			return false
		}
		for _, k := range x.Kids {
			if !isPlainLeafOrInner(k) {
				return false
			}
		}
		return true
	}
	return false
}

// joinTree translates a table ref into a join-annotation expression,
// registering bindings and ON conditions along the way.
func (tr *translator) joinTree(ref sql.TableRef, sp *scopeParts) (alt.JoinExpr, error) {
	switch x := ref.(type) {
	case *sql.BaseTable:
		v := x.Binding()
		sp.bindings = append(sp.bindings, alt.Bind(v, x.Name))
		return alt.JV(v), nil
	case *sql.SubqueryTable:
		sub, err := tr.query(x.Query, strings_Title(x.Alias))
		if err != nil {
			return nil, err
		}
		sp.bindings = append(sp.bindings, alt.BindSub(x.Alias, sub))
		return alt.JV(x.Alias), nil
	case *sql.JoinRef:
		l, err := tr.joinTree(x.Left, sp)
		if err != nil {
			return nil, err
		}
		r, err := tr.joinTree(x.Right, sp)
		if err != nil {
			return nil, err
		}
		switch x.Kind {
		case sql.JoinInner, sql.JoinCross:
			if x.On != nil {
				f, err := tr.boolExpr(x.On, sp)
				if err != nil {
					return nil, err
				}
				sp.conjs = append(sp.conjs, f)
			}
			return alt.Inner(l, r), nil
		case sql.JoinLeft, sql.JoinFull:
			nullable, err := tr.outerJoinConds(x, l, &r, sp)
			if err != nil {
				return nil, err
			}
			_ = nullable
			if x.Kind == sql.JoinLeft {
				return alt.LeftJ(l, r), nil
			}
			return alt.FullJ(l, r), nil
		}
	}
	return nil, fmt.Errorf("sql2arc: unknown table ref %T", ref)
}

// outerJoinConds translates the ON condition of a left/full join. Each
// conjunct must reference the nullable side so the evaluator's routing
// attaches it to the join node; conjuncts comparing the non-nullable side
// with a constant are encoded via a constant join leaf, the paper's
// device in Fig 12 / query (18). r is updated in place when constant
// leaves are added.
func (tr *translator) outerJoinConds(x *sql.JoinRef, l alt.JoinExpr, r *alt.JoinExpr, sp *scopeParts) (alt.JoinExpr, error) {
	if x.On == nil {
		return *r, nil
	}
	conjs := flattenAnd(x.On)
	rightVars := map[string]bool{}
	for _, v := range alt.JoinVars(*r, nil) {
		rightVars[v] = true
	}
	for _, c := range conjs {
		if refsAny(c, rightVars) {
			f, err := tr.boolExpr(c, sp)
			if err != nil {
				return nil, err
			}
			sp.conjs = append(sp.conjs, f)
			continue
		}
		// Left-side-only conjunct: must be expr-vs-constant; encode with a
		// constant join leaf on the nullable side.
		cmp, ok := c.(*sql.Cmp)
		if !ok {
			return nil, fmt.Errorf("sql2arc: unsupported ON condition %s (does not reference the nullable side)", c)
		}
		var colSide, litSide sql.Expr = cmp.L, cmp.R
		lit, isLit := litSide.(*sql.Lit)
		op := cmp.Op
		if !isLit {
			colSide, litSide = cmp.R, cmp.L
			lit, isLit = litSide.(*sql.Lit)
			op = op.Flip()
		}
		if !isLit {
			return nil, fmt.Errorf("sql2arc: unsupported non-constant ON condition %s on the non-nullable side", c)
		}
		cv := tr.gensym("c")
		jc := alt.JC(lit.Val, cv)
		*r = alt.Inner(jc, *r)
		t, err := tr.scalarExpr(colSide, sp)
		if err != nil {
			return nil, err
		}
		sp.conjs = append(sp.conjs, &alt.Pred{Left: t, Op: op, Right: alt.Ref(cv, "val")})
	}
	return *r, nil
}

func flattenAnd(e sql.Expr) []sql.Expr {
	if a, ok := e.(*sql.AndE); ok {
		var out []sql.Expr
		for _, k := range a.Kids {
			out = append(out, flattenAnd(k)...)
		}
		return out
	}
	return []sql.Expr{e}
}

// refsAny reports whether e references any of the given table aliases.
func refsAny(e sql.Expr, vars map[string]bool) bool {
	found := false
	var walk func(sql.Expr)
	walk = func(e sql.Expr) {
		switch x := e.(type) {
		case *sql.ColRef:
			if vars[x.Table] {
				found = true
			}
		case *sql.BinE:
			walk(x.L)
			walk(x.R)
		case *sql.Cmp:
			walk(x.L)
			walk(x.R)
		case *sql.AndE:
			for _, k := range x.Kids {
				walk(k)
			}
		case *sql.OrE:
			for _, k := range x.Kids {
				walk(k)
			}
		case *sql.NotE:
			walk(x.Kid)
		case *sql.IsNullE:
			walk(x.Arg)
		}
	}
	walk(e)
	return found
}

// strings_Title capitalizes the first rune for derived head names.
func strings_Title(s string) string {
	if s == "" {
		return "X"
	}
	b := []byte(s)
	if b[0] >= 'a' && b[0] <= 'z' {
		b[0] -= 'a' - 'A'
	}
	return string(b)
}

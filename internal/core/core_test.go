package core

import (
	"strings"
	"testing"
)

func TestEndToEndThroughFacade(t *testing.T) {
	cat := NewCatalog().
		AddRelation(NewRelation("R", "A", "B").Add(1, 10).Add(2, 20)).
		AddRelation(NewRelation("S", "B", "C").Add(10, 0))
	col, err := ParseARCCollection("{Q(A) | ∃r ∈ R, s ∈ S [Q.A = r.A ∧ r.B = s.B ∧ s.C = 0]}")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Validate(col); err != nil {
		t.Fatal(err)
	}
	got, err := Eval(col, cat, SetLogic())
	if err != nil {
		t.Fatal(err)
	}
	if got.Card() != 1 {
		t.Fatalf("result:\n%s", got)
	}
	if !strings.Contains(ALT(col), "COLLECTION") {
		t.Error("ALT rendering broken")
	}
	g, err := HigraphOf(col)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(g.ASCII(), "head Q") {
		t.Error("higraph rendering broken")
	}
}

func TestSQLRoundTripThroughFacade(t *testing.T) {
	col, err := FromSQL("select R.A, sum(R.B) sm from R group by R.A")
	if err != nil {
		t.Fatal(err)
	}
	sqlText, err := ToSQL(col)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRelation("R", "A", "B").Add(1, 10).Add(1, 20)
	want, err := EvalSQL("select R.A, sum(R.B) sm from R group by R.A", r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := EvalSQL(sqlText, r)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualSet(want) {
		t.Fatalf("round trip:\n%s\n%s", got, want)
	}
}

func TestDatalogThroughFacade(t *testing.T) {
	p := NewRelation("P", "s", "t").Add(1, 2).Add(2, 3)
	dl, err := EvalDatalog("A(x,y) :- P(x,y). A(x,y) :- P(x,z), A(z,y).", "A", p)
	if err != nil {
		t.Fatal(err)
	}
	col, err := FromDatalog("A(x,y) :- P(x,y). A(x,y) :- P(x,z), A(z,y).",
		map[string][]string{"P": {"s", "t"}, "A": {"s", "t"}}, "A")
	if err != nil {
		t.Fatal(err)
	}
	cat := NewCatalog().AddRelation(p)
	arcRes, err := Eval(col, cat, Souffle())
	if err != nil {
		t.Fatal(err)
	}
	if !arcRes.EqualSet(dl) {
		t.Fatal("Datalog facade disagrees")
	}
}

func TestTRCThroughFacade(t *testing.T) {
	col, err := ParseTRC("{r.A | r ∈ R ∧ ∃s[r.B = s.B ∧ s ∈ S]}")
	if err != nil {
		t.Fatal(err)
	}
	if col.Head.Rel != "Q" {
		t.Fatalf("normalized head = %s", col.Head.Rel)
	}
}

func TestPatternThroughFacade(t *testing.T) {
	a, _ := ParseARCCollection("{Q(A, sm) | ∃r ∈ R, γ r.A [Q.A = r.A ∧ Q.sm = sum(r.B)]}")
	sig, err := PatternSignature(a)
	if err != nil {
		t.Fatal(err)
	}
	if PatternSimilarity(sig, sig) != 1 {
		t.Error("self similarity")
	}
	if cls, _ := ClassifyAggregation(a); cls.String() != "FIO" {
		t.Errorf("classification = %v", cls)
	}
	v2, _ := FromSQL(`select R.id from R,
		(select S.id, count(S.d) as ct from S group by S.id) as X
		where R.q = X.ct and R.id = X.id`)
	f, err := LintCountBug(v2)
	if err != nil || len(f) != 1 {
		t.Errorf("lint through facade: %v %v", f, err)
	}
}

func TestSentenceThroughFacade(t *testing.T) {
	_, s, err := ParseARC("∃r ∈ R [r.q <= 5]")
	if err != nil || s == nil {
		t.Fatal(err)
	}
	cat := NewCatalog().AddRelation(NewRelation("R", "q").Add(3))
	ok, err := EvalSentence(s, cat, SetLogic())
	if err != nil || !ok {
		t.Fatalf("sentence: %v %v", ok, err)
	}
}

func TestParseSQLExposed(t *testing.T) {
	q, err := ParseSQL("select R.A from R")
	if err != nil || q == nil {
		t.Fatal(err)
	}
}

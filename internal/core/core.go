// Package core is the public facade of the ARC library: one import that
// exposes parsing (all three input languages), validation, evaluation
// under conventions, translation (SQL ↔ ARC, Datalog → ARC, TRC → ARC),
// the three modalities (comprehension text, ALT, higraph), and pattern
// analysis. The examples and command-line tools are written against this
// surface.
//
// Evaluation flows through internal/engine, the unified prepared-
// statement front door for all three languages: OpenEngine exposes it
// directly (Prepare once, Query many, streaming Rows cursors, race-safe
// concurrent sessions), while the one-shot Eval/EvalSQL/EvalDatalog
// functions remain as thin shims over it for compatibility.
package core

import (
	"context"

	"repro/internal/alt"
	"repro/internal/arc"
	"repro/internal/arc2sql"
	"repro/internal/convention"
	"repro/internal/datalog"
	"repro/internal/engine"
	"repro/internal/eval"
	"repro/internal/higraph"
	"repro/internal/pattern"
	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/sql2arc"
	"repro/internal/sqleval"
	"repro/internal/trc"
)

// Re-exported types. The facade keeps the one-package import ergonomic
// without duplicating implementations.
type (
	// Collection is an ARC comprehension (the unit of definition).
	Collection = alt.Collection
	// Sentence is a Boolean ARC statement.
	Sentence = alt.Sentence
	// Relation is a flat named-perspective relation (set or bag).
	Relation = relation.Relation
	// Tuple is one row.
	Tuple = relation.Tuple
	// Catalog is the evaluation environment.
	Catalog = eval.Catalog
	// Conventions bundles the orthogonal semantic switches.
	Conventions = convention.Conventions
	// Signature is a relational-pattern summary.
	Signature = pattern.Signature
	// Higraph is the diagrammatic modality's data structure.
	Higraph = higraph.Graph
)

// Convention presets (Section 2.6/2.7).
var (
	// SetLogic: set semantics, 3VL, SQL aggregate conventions.
	SetLogic = convention.SetLogic
	// SQL: bag semantics, 3VL, SUM over empty = NULL.
	SQL = convention.SQL
	// SQLDistinct: SQL conventions with set output.
	SQLDistinct = convention.SQLDistinct
	// Souffle: set semantics, 2VL, SUM over empty = 0.
	Souffle = convention.Souffle
)

// --- Engine API (the unified front door) ----------------------------------

// Engine re-exports: one DB holds the catalog, statements prepare once
// (parse + validate + plan) and execute many times, Query returns a
// streaming Rows cursor, and N sessions may execute prepared statements
// concurrently. See internal/engine for the full contract.
type (
	// Engine is a prepared-statement database over the three languages.
	Engine = engine.DB
	// Stmt is a prepared statement (Query/QueryAll/Exec/Kind/Columns).
	Stmt = engine.Stmt
	// Rows is a streaming result cursor (Next/Scan/Columns/Close/Err).
	Rows = engine.Rows
	// Lang selects a statement's language.
	Lang = engine.Lang
	// Input is a named input-relation binding for ARC/Datalog statements.
	Input = engine.Binding
	// Result reports what a write changed (rows affected + generation).
	Result = engine.Result
	// StmtKind distinguishes query, DML, DDL, and transaction control.
	StmtKind = engine.StmtKind
	// Tx is an open transaction (Prepare/Query/Exec/Commit/Rollback),
	// mirroring database/sql: snapshot-isolated reads, private write
	// set, first-committer-wins commit.
	Tx = engine.Tx
	// Session is a connection-scoped context that executes SQL-level
	// BEGIN/COMMIT/ROLLBACK as statements.
	Session = engine.Session
)

// Language selectors for Engine.Prepare.
const (
	LangSQL     = engine.LangSQL
	LangARC     = engine.LangARC
	LangDatalog = engine.LangDatalog
)

// Statement kinds reported by Stmt.Kind.
const (
	KindQuery    = engine.KindQuery
	KindDML      = engine.KindDML
	KindDDL      = engine.KindDDL
	KindBegin    = engine.KindBegin
	KindCommit   = engine.KindCommit
	KindRollback = engine.KindRollback
)

// Write-path sentinel errors.
var (
	// ErrConflict reports a first-committer-wins commit loss; retry the
	// transaction against the new snapshot.
	ErrConflict = engine.ErrConflict
	// ErrTxDone reports use of a committed/rolled-back transaction.
	ErrTxDone = engine.ErrTxDone
	// ErrDMLBinding reports a relation binding passed to a non-query.
	ErrDMLBinding = engine.ErrDMLBinding
)

// OpenEngine creates an engine over base relations.
func OpenEngine(rels ...*Relation) *Engine { return engine.Open(rels...) }

// OpenEngineCatalog creates an engine over an existing catalog (views,
// abstract relations, and externals included).
func OpenEngineCatalog(cat *Catalog, rels ...*Relation) *Engine {
	return engine.OpenCatalog(cat, rels...)
}

// Bind builds a named input binding for ARC/Datalog statement execution.
func Bind(name string, rel *Relation) Input { return engine.In(name, rel) }

// NewRelation creates an empty relation.
func NewRelation(name string, attrs ...string) *Relation { return relation.New(name, attrs...) }

// NewCatalog creates an empty catalog; chain AddRelation / DefineView /
// DefineAbstract / WithStandardExternals.
func NewCatalog() *Catalog { return eval.NewCatalog() }

// ParseARC parses ARC comprehension syntax (auto-detecting collection vs
// sentence).
func ParseARC(src string) (*Collection, *Sentence, error) { return arc.Parse(src) }

// ParseARCCollection parses a "{Head | Body}" comprehension.
func ParseARCCollection(src string) (*Collection, error) { return arc.ParseCollection(src) }

// ParseTRC parses the loose textbook TRC form and normalizes it into a
// strict ARC collection (Section 2.1).
func ParseTRC(src string) (*Collection, error) {
	q, err := trc.Parse(src)
	if err != nil {
		return nil, err
	}
	col, _, err := q.Normalize()
	return col, err
}

// Validate links and validates a collection as a strict query, returning
// the annotation (the higraph cross-references).
func Validate(col *Collection) (*alt.Link, error) { return alt.ValidateCollection(col) }

// ExplainARC renders the tuple-level query plan of every quantifier
// scope in col (or why a scope stays on environment enumeration).
func ExplainARC(col *Collection, cat *Catalog, conv Conventions) (string, error) {
	return eval.ExplainCollection(col, cat, conv)
}

// ExplainSQL renders the physical plan the SQL planner compiles src
// onto; the error reports the bailout reason for unplannable queries.
func ExplainSQL(src string, rels ...*Relation) (string, error) {
	q, err := sql.Parse(src)
	if err != nil {
		return "", err
	}
	db := sqleval.DB{}
	for _, r := range rels {
		db[r.Name()] = r
	}
	return sqleval.Explain(q, db)
}

// Eval evaluates a collection against a catalog under conventions — a
// one-shot shim over the engine (prefer OpenEngineCatalog + Prepare for
// repeated execution).
func Eval(col *Collection, cat *Catalog, conv Conventions) (*Relation, error) {
	stmt, err := engine.OpenCatalog(cat).PrepareARCCollection(col, conv)
	if err != nil {
		return nil, err
	}
	return stmt.QueryAll(context.Background())
}

// EvalSentence evaluates a Boolean sentence.
func EvalSentence(s *Sentence, cat *Catalog, conv Conventions) (bool, error) {
	return eval.EvalSentence(s, cat, conv)
}

// FromSQL translates a SQL string into ARC (Section 5's SQL → ARC
// direction, with the paper's canonical encodings).
func FromSQL(src string) (*Collection, error) { return sql2arc.TranslateString(src) }

// ToSQL renders an ARC collection back to SQL text.
func ToSQL(col *Collection) (string, error) { return arc2sql.RenderString(col) }

// EvalSQL runs a SQL string directly on relations with standard SQL
// semantics — a one-shot shim over the engine (prefer OpenEngine +
// Prepare with $n placeholders for repeated execution).
func EvalSQL(src string, rels ...*Relation) (*Relation, error) {
	return engine.Open(rels...).QueryAll(context.Background(), engine.LangSQL, src)
}

// FromDatalog parses a Datalog program and translates one predicate into
// ARC; schemas names the attributes of every predicate used.
func FromDatalog(src string, schemas map[string][]string, pred string) (*Collection, error) {
	p, err := datalog.Parse(src)
	if err != nil {
		return nil, err
	}
	return datalog.ToARC(p, schemas, pred)
}

// EvalDatalog runs a Datalog program under Soufflé conventions and
// returns one predicate — a one-shot shim over the engine (prefer
// OpenEngine + PrepareDatalog for repeated execution).
func EvalDatalog(src string, pred string, rels ...*Relation) (*Relation, error) {
	stmt, err := engine.Open(rels...).PrepareDatalog(src, pred)
	if err != nil {
		return nil, err
	}
	return stmt.QueryAll(context.Background())
}

// ALT renders the machine-facing tree modality (Fig 2a).
func ALT(col *Collection) string { return alt.PrintTree(col) }

// HigraphOf builds the diagrammatic modality (Fig 2b); render with
// .ASCII() or .SVG().
func HigraphOf(col *Collection) (*Higraph, error) { return higraph.Build(col) }

// PatternSignature computes the relational-pattern summary.
func PatternSignature(col *Collection) (*Signature, error) { return pattern.ComputeSignature(col) }

// PatternSimilarity scores two patterns in [0,1].
func PatternSimilarity(a, b *Signature) float64 { return pattern.Similarity(a, b) }

// ClassifyAggregation reports FIO vs FOI (Section 2.5).
func ClassifyAggregation(col *Collection) (pattern.AggPattern, error) {
	return pattern.ClassifyAggregation(col)
}

// LintCountBug flags the Fig 21b decorrelation hazard.
func LintCountBug(col *Collection) ([]pattern.Finding, error) { return pattern.LintCountBug(col) }

// ParseSQL exposes the SQL parser for tooling.
func ParseSQL(src string) (sql.Query, error) { return sql.Parse(src) }

package arc

import (
	"strings"
	"testing"
)

// TestParserNeverPanics feeds the parser systematically mangled inputs —
// truncations, substitutions, and garbage — and requires an error rather
// than a panic every time.
func TestParserNeverPanics(t *testing.T) {
	seeds := []string{
		"{Q(A) | ∃r ∈ R, s ∈ S [Q.A = r.A ∧ r.B = s.B ∧ s.C = 0]}",
		"{Q(A, sm) | ∃r ∈ R, γ r.A [Q.A = r.A ∧ Q.sm = sum(r.B)]}",
		"{Q(m, n) | ∃r ∈ R, s ∈ S, left(r, inner(11 AS c, s)) [Q.m = r.m]}",
		"∃r ∈ R [∃s ∈ S, γ ∅ [r.id = s.id ∧ r.q <= count(s.d)]]",
	}
	junk := []string{"", "{", "}", "|", "∃", "γ", "[", "]", "((", "{Q(", "q.q.q", "{Q(A)|∃[", "🙂", "{Q(A) | ∃r ∈ R [Q.A = r.A]}}}}"}
	var inputs []string
	inputs = append(inputs, junk...)
	for _, s := range seeds {
		for cut := 0; cut < len(s); cut += 3 {
			inputs = append(inputs, s[:cut])
		}
		inputs = append(inputs,
			strings.ReplaceAll(s, "∈", ""),
			strings.ReplaceAll(s, "[", "("),
			strings.ReplaceAll(s, "=", "=="),
			s+s,
		)
	}
	for _, in := range inputs {
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Errorf("panic on %q: %v", in, p)
				}
			}()
			_, _, _ = Parse(in)
		}()
	}
}

package arc

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/alt"
	"repro/internal/value"
)

// ParseCollection parses a comprehension "{Head | Body}" into an ALT.
func ParseCollection(src string) (*alt.Collection, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	col, err := p.collection()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errf("trailing input %q", p.peek().text)
	}
	return col, nil
}

// ParseSentence parses a bare Boolean formula (Section 2.5 sentences).
func ParseSentence(src string) (*alt.Sentence, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	f, err := p.formula()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errf("trailing input %q", p.peek().text)
	}
	return &alt.Sentence{Body: f}, nil
}

// Parse auto-detects: a leading "{" parses as a collection, anything
// else as a sentence. It returns exactly one of the two.
func Parse(src string) (*alt.Collection, *alt.Sentence, error) {
	if strings.HasPrefix(strings.TrimSpace(src), "{") {
		c, err := ParseCollection(src)
		return c, nil, err
	}
	s, err := ParseSentence(src)
	return nil, s, err
}

// MustParseCollection parses or panics; for fixtures.
func MustParseCollection(src string) *alt.Collection {
	c, err := ParseCollection(src)
	if err != nil {
		panic(err)
	}
	return c
}

type parser struct {
	toks []token
	pos  int
}

func newParser(src string) (*parser, error) {
	toks, err := lexArc(src)
	if err != nil {
		return nil, err
	}
	return &parser{toks: toks}, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) peek2() token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }
func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("arc: %s (near offset %d)", fmt.Sprintf(format, args...), p.peek().pos)
}

func (p *parser) acceptSym(s string) bool {
	if t := p.peek(); t.kind == tokSym && t.text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectSym(s string) error {
	if !p.acceptSym(s) {
		return p.errf("expected %q, found %q", s, p.peek().text)
	}
	return nil
}

func (p *parser) acceptKw(w string) bool {
	if t := p.peek(); t.kind == tokIdent && t.text == w {
		p.pos++
		return true
	}
	return false
}

func (p *parser) peekKw(w string) bool {
	t := p.peek()
	return t.kind == tokIdent && t.text == w
}

// collection := '{' IDENT '(' attrs ')' '|' formula '}'
func (p *parser) collection() (*alt.Collection, error) {
	if err := p.expectSym("{"); err != nil {
		return nil, err
	}
	name := p.next()
	if name.kind != tokIdent {
		return nil, p.errf("expected head relation name, found %q", name.text)
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	var attrs []string
	for {
		a := p.next()
		if a.kind != tokIdent {
			return nil, p.errf("expected head attribute, found %q", a.text)
		}
		attrs = append(attrs, a.raw)
		if !p.acceptSym(",") {
			break
		}
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	if err := p.expectSym("|"); err != nil {
		return nil, err
	}
	body, err := p.formula()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym("}"); err != nil {
		return nil, err
	}
	return &alt.Collection{Head: alt.Head{Rel: name.raw, Attrs: attrs}, Body: body}, nil
}

// formula := and (('∨'|'or') and)*
func (p *parser) formula() (alt.Formula, error) {
	left, err := p.andFormula()
	if err != nil {
		return nil, err
	}
	kids := []alt.Formula{left}
	for p.acceptSym("∨") || p.acceptKw("or") {
		k, err := p.andFormula()
		if err != nil {
			return nil, err
		}
		kids = append(kids, k)
	}
	if len(kids) == 1 {
		return left, nil
	}
	return alt.OrF(kids...), nil
}

func (p *parser) andFormula() (alt.Formula, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	kids := []alt.Formula{left}
	for p.acceptSym("∧") || p.acceptKw("and") {
		k, err := p.unary()
		if err != nil {
			return nil, err
		}
		kids = append(kids, k)
	}
	if len(kids) == 1 {
		return left, nil
	}
	return alt.AndF(kids...), nil
}

func (p *parser) unary() (alt.Formula, error) {
	if p.acceptSym("¬") || p.acceptSym("!") || p.acceptKw("not") {
		k, err := p.unary()
		if err != nil {
			return nil, err
		}
		return alt.NotF(k), nil
	}
	if p.acceptSym("∃") || p.acceptKw("exists") {
		return p.quantifier()
	}
	if p.acceptSym("(") {
		f, err := p.formula()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return f, nil
	}
	return p.predicate()
}

// quantifier := bindingItems '[' formula ']'
// bindingItems are comma-separated: bindings ("v ∈ R" or "v ∈ {…}"),
// one grouping clause ("γ ∅" | "γ k.a,…"), and one join annotation
// ("left(…)" / "inner(…)" / "full(…)").
func (p *parser) quantifier() (alt.Formula, error) {
	q := &alt.Quantifier{}
	for {
		switch {
		case p.peekGamma():
			p.pos++ // γ / gamma
			g, err := p.grouping()
			if err != nil {
				return nil, err
			}
			if q.Grouping != nil {
				return nil, p.errf("duplicate grouping clause")
			}
			q.Grouping = g
		case p.peekJoinAnn():
			j, err := p.joinExpr()
			if err != nil {
				return nil, err
			}
			if q.Join != nil {
				return nil, p.errf("duplicate join annotation")
			}
			q.Join = j
		default:
			b, err := p.binding()
			if err != nil {
				return nil, err
			}
			q.Bindings = append(q.Bindings, b)
		}
		if p.acceptSym(",") {
			continue
		}
		break
	}
	if err := p.expectSym("["); err != nil {
		return nil, err
	}
	if !p.acceptSym("]") {
		body, err := p.formula()
		if err != nil {
			return nil, err
		}
		q.Body = body
		if err := p.expectSym("]"); err != nil {
			return nil, err
		}
	}
	return q, nil
}

func (p *parser) peekGamma() bool {
	t := p.peek()
	return (t.kind == tokSym && t.text == "γ") || (t.kind == tokIdent && t.text == "gamma")
}

func (p *parser) peekJoinAnn() bool {
	t := p.peek()
	if t.kind != tokIdent {
		return false
	}
	if t.text != "left" && t.text != "inner" && t.text != "full" {
		return false
	}
	n := p.peek2()
	return n.kind == tokSym && n.text == "("
}

func (p *parser) grouping() (*alt.Grouping, error) {
	if p.acceptSym("∅") || p.acceptKw("empty") {
		return &alt.Grouping{}, nil
	}
	var keys []*alt.AttrRef
	for {
		v := p.next()
		if v.kind != tokIdent {
			return nil, p.errf("expected grouping key, found %q", v.text)
		}
		if err := p.expectSym("."); err != nil {
			return nil, err
		}
		a := p.next()
		if a.kind != tokIdent {
			return nil, p.errf("expected attribute after %q.", v.raw)
		}
		keys = append(keys, alt.Ref(v.raw, a.raw))
		// Another key follows only if the comma is followed by IDENT "."
		if p.peek().kind == tokSym && p.peek().text == "," {
			save := p.pos
			p.pos++
			if p.peek().kind == tokIdent && p.peek2().kind == tokSym && p.peek2().text == "." &&
				!p.peekJoinAnn() {
				continue
			}
			p.pos = save
		}
		break
	}
	return &alt.Grouping{Keys: keys}, nil
}

func (p *parser) joinExpr() (alt.JoinExpr, error) {
	kw := p.next()
	var kind alt.JoinKind
	switch kw.text {
	case "inner":
		kind = alt.JoinInner
	case "left":
		kind = alt.JoinLeft
	case "full":
		kind = alt.JoinFull
	default:
		return nil, p.errf("expected join kind, found %q", kw.text)
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	var kids []alt.JoinExpr
	for {
		k, err := p.joinLeaf()
		if err != nil {
			return nil, err
		}
		kids = append(kids, k)
		if !p.acceptSym(",") {
			break
		}
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	return &alt.JoinOp{Kind: kind, Kids: kids}, nil
}

func (p *parser) joinLeaf() (alt.JoinExpr, error) {
	t := p.peek()
	switch {
	case t.kind == tokIdent && (t.text == "inner" || t.text == "left" || t.text == "full") &&
		p.peek2().kind == tokSym && p.peek2().text == "(":
		return p.joinExpr()
	case t.kind == tokNumber || t.kind == tokString:
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		as := ""
		if p.acceptKw("as") {
			a := p.next()
			if a.kind != tokIdent {
				return nil, p.errf("expected name after AS")
			}
			as = a.raw
		}
		return alt.JC(v, as), nil
	case t.kind == tokIdent:
		p.pos++
		return alt.JV(t.raw), nil
	}
	return nil, p.errf("expected join leaf, found %q", t.text)
}

func (p *parser) literal() (value.Value, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		if strings.Contains(t.text, ".") {
			f, _ := strconv.ParseFloat(t.text, 64)
			return value.Float(f), nil
		}
		i, _ := strconv.ParseInt(t.text, 10, 64)
		return value.Int(i), nil
	case tokString:
		return value.Str(t.text), nil
	}
	return value.Null(), p.errf("expected literal, found %q", t.text)
}

// binding := IDENT ('∈'|'in') (relname | collection)
func (p *parser) binding() (*alt.Binding, error) {
	v := p.next()
	if v.kind != tokIdent {
		return nil, p.errf("expected binding variable, found %q", v.text)
	}
	if !p.acceptSym("∈") && !p.acceptKw("in") {
		return nil, p.errf("expected ∈ after %q", v.raw)
	}
	if p.peek().kind == tokSym && p.peek().text == "{" {
		sub, err := p.collection()
		if err != nil {
			return nil, err
		}
		return alt.BindSub(v.raw, sub), nil
	}
	rel := p.next()
	if rel.kind != tokIdent {
		return nil, p.errf("expected relation name, found %q", rel.text)
	}
	return alt.Bind(v.raw, rel.raw), nil
}

// predicate := term (cmp term | 'is' ['not'] 'null')
func (p *parser) predicate() (alt.Formula, error) {
	l, err := p.term()
	if err != nil {
		return nil, err
	}
	if p.acceptKw("is") {
		neg := p.acceptKw("not")
		if !p.acceptKw("null") {
			return nil, p.errf("expected NULL after IS")
		}
		return &alt.IsNull{Arg: l, Negated: neg}, nil
	}
	t := p.peek()
	if t.kind != tokSym {
		return nil, p.errf("expected comparison operator, found %q", t.text)
	}
	var op value.CmpOp
	switch t.text {
	case "=":
		op = value.Eq
	case "<>", "!=":
		op = value.Ne
	case "<":
		op = value.Lt
	case "<=":
		op = value.Le
	case ">":
		op = value.Gt
	case ">=":
		op = value.Ge
	default:
		return nil, p.errf("expected comparison operator, found %q", t.text)
	}
	p.pos++
	r, err := p.term()
	if err != nil {
		return nil, err
	}
	return &alt.Pred{Left: l, Op: op, Right: r}, nil
}

func (p *parser) term() (alt.Term, error) {
	return p.additive()
}

func (p *parser) additive() (alt.Term, error) {
	l, err := p.multiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptSym("+"):
			r, err := p.multiplicative()
			if err != nil {
				return nil, err
			}
			l = alt.Plus(l, r)
		case p.acceptSym("-"):
			r, err := p.multiplicative()
			if err != nil {
				return nil, err
			}
			l = alt.Minus(l, r)
		default:
			return l, nil
		}
	}
}

func (p *parser) multiplicative() (alt.Term, error) {
	l, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptSym("*"):
			r, err := p.primary()
			if err != nil {
				return nil, err
			}
			l = alt.Times(l, r)
		case p.acceptSym("/"):
			r, err := p.primary()
			if err != nil {
				return nil, err
			}
			l = alt.DivBy(l, r)
		default:
			return l, nil
		}
	}
}

func (p *parser) primary() (alt.Term, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber, tokString:
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		return alt.CVal(v), nil
	case tokSym:
		if t.text == "(" {
			p.pos++
			e, err := p.term()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.text == "-" {
			p.pos++
			e, err := p.primary()
			if err != nil {
				return nil, err
			}
			if c, ok := e.(*alt.Const); ok && c.Val.IsNumeric() {
				if c.Val.Kind() == value.KindInt {
					return alt.CInt(-c.Val.AsInt()), nil
				}
				return alt.CFloat(-c.Val.AsFloat()), nil
			}
			return alt.Minus(alt.CInt(0), e), nil
		}
	case tokIdent:
		if t.text == "null" {
			p.pos++
			return alt.CNull(), nil
		}
		if fn, ok := alt.AggFuncByName(t.text); ok && p.peek2().kind == tokSym && p.peek2().text == "(" {
			p.pos += 2
			arg, err := p.term()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return &alt.Agg{Func: fn, Arg: arg}, nil
		}
		p.pos++
		if err := p.expectSym("."); err != nil {
			return nil, err
		}
		a := p.next()
		if a.kind != tokIdent {
			return nil, p.errf("expected attribute after %q.", t.raw)
		}
		return alt.Ref(t.raw, a.raw), nil
	}
	return nil, p.errf("unexpected token %q in term", t.text)
}

package arc

import (
	"strings"
	"testing"

	"repro/internal/alt"
	"repro/internal/convention"
	"repro/internal/eval"
	"repro/internal/relation"
)

func TestParsePaperQuery1(t *testing.T) {
	// Query (1), in both notations.
	for _, src := range []string{
		"{Q(A) | ∃r ∈ R, s ∈ S [Q.A = r.A ∧ r.B = s.B ∧ s.C = 0]}",
		"{Q(A) | exists r in R, s in S [Q.A = r.A and r.B = s.B and s.C = 0]}",
	} {
		col, err := ParseCollection(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := alt.ValidateCollection(col); err != nil {
			t.Fatalf("validate: %v", err)
		}
		q := col.Body.(*alt.Quantifier)
		if len(q.Bindings) != 2 {
			t.Fatalf("bindings = %d", len(q.Bindings))
		}
	}
}

func TestParseGroupedAggregate(t *testing.T) {
	// Query (3).
	col := MustParseCollection("{Q(A, sm) | ∃r ∈ R, γ r.A [Q.A = r.A ∧ Q.sm = sum(r.B)]}")
	q := col.Body.(*alt.Quantifier)
	if q.Grouping == nil || len(q.Grouping.Keys) != 1 {
		t.Fatalf("grouping = %+v", q.Grouping)
	}
	// ASCII form.
	col2 := MustParseCollection("{Q(A, sm) | exists r in R, gamma r.A [Q.A = r.A and Q.sm = sum(r.B)]}")
	if col2.String() != col.String() {
		t.Fatalf("ASCII and Unicode forms differ:\n%s\n%s", col.String(), col2.String())
	}
}

func TestParseEmptyGrouping(t *testing.T) {
	col := MustParseCollection("{X(sm) | ∃s ∈ S, γ ∅ [X.sm = sum(s.B)]}")
	q := col.Body.(*alt.Quantifier)
	if q.Grouping == nil || len(q.Grouping.Keys) != 0 {
		t.Fatalf("γ∅ = %+v", q.Grouping)
	}
	col2 := MustParseCollection("{X(sm) | exists s in S, gamma empty [X.sm = sum(s.B)]}")
	if col2.String() != col.String() {
		t.Fatal("gamma empty should equal γ ∅")
	}
}

func TestParseNestedCollection(t *testing.T) {
	// Query (7): FOI with nested lateral collection.
	src := `{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm) | ∃r2 ∈ R, γ ∅ [r2.A = r.A ∧ X.sm = sum(r2.B)]}
		[Q.A = r.A ∧ Q.sm = x.sm]}`
	col := MustParseCollection(src)
	if _, err := alt.ValidateCollection(col); err != nil {
		t.Fatalf("validate: %v", err)
	}
	q := col.Body.(*alt.Quantifier)
	if q.Bindings[1].Sub == nil {
		t.Fatal("nested collection binding missing")
	}
}

func TestParseRecursion(t *testing.T) {
	// Query (16).
	src := `{A(s, t) | ∃p ∈ P [A.s = p.s ∧ A.t = p.t] ∨
		∃p ∈ P, a2 ∈ A [A.s = p.s ∧ p.t = a2.s ∧ A.t = a2.t]}`
	col := MustParseCollection(src)
	link, err := alt.ValidateCollection(col)
	if err != nil {
		t.Fatalf("validate: %v", err)
	}
	if !link.RecursiveCols[col] {
		t.Fatal("recursion not detected")
	}
}

func TestParseNegationAndNullChecks(t *testing.T) {
	// Query (17).
	src := `{Q(A) | ∃r ∈ R [Q.A = r.A ∧
		¬(∃s ∈ S [s.A = r.A ∨ s.A is null ∨ r.A is null])]}`
	col := MustParseCollection(src)
	if _, err := alt.ValidateCollection(col); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestParseJoinAnnotation(t *testing.T) {
	// Query (18).
	src := `{Q(m, n) | ∃r ∈ R, s ∈ S, left(r, inner(11 AS c, s))
		[Q.m = r.m ∧ Q.n = s.n ∧ r.y = s.y ∧ r.h = c.val]}`
	col := MustParseCollection(src)
	q := col.Body.(*alt.Quantifier)
	j := q.Join.(*alt.JoinOp)
	if j.Kind != alt.JoinLeft {
		t.Fatalf("join kind = %v", j.Kind)
	}
	inner := j.Kids[1].(*alt.JoinOp)
	jc := inner.Kids[0].(*alt.JoinConst)
	if jc.Val.AsInt() != 11 || jc.Var != "c" {
		t.Fatalf("const leaf = %+v", jc)
	}
}

func TestParseSentence(t *testing.T) {
	// Sentences (13) and (14).
	s13, err := ParseSentence("∃r ∈ R [∃s ∈ S, γ ∅ [r.id = s.id ∧ r.q <= count(s.d)]]")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alt.ValidateSentence(s13); err != nil {
		t.Fatal(err)
	}
	s14, err := ParseSentence("¬(∃r ∈ R [∃s ∈ S, γ ∅ [r.id = s.id ∧ r.q > count(s.d)]])")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s14.Body.(*alt.Not); !ok {
		t.Fatal("negated sentence shape broken")
	}
}

func TestAutoDetect(t *testing.T) {
	c, s, err := Parse("{Q(A) | ∃r ∈ R [Q.A = r.A]}")
	if err != nil || c == nil || s != nil {
		t.Fatalf("collection detection: %v %v %v", c, s, err)
	}
	c2, s2, err := Parse("∃r ∈ R [r.A = 1]")
	if err != nil || c2 != nil || s2 == nil {
		t.Fatalf("sentence detection: %v %v %v", c2, s2, err)
	}
}

func TestRoundTripPrintedALTs(t *testing.T) {
	// Every printed collection must reparse to the same string.
	srcs := []string{
		"{Q(A) | ∃r ∈ R, s ∈ S [Q.A = r.A ∧ r.B = s.B ∧ s.C = 0]}",
		"{Q(A, sm) | ∃r ∈ R, γ r.A [Q.A = r.A ∧ Q.sm = sum(r.B)]}",
		"{Q(m, n) | ∃r ∈ R, s ∈ S, left(r, inner(11 AS c, s)) [Q.m = r.m ∧ Q.n = s.n ∧ r.y = s.y ∧ r.h = c.val]}",
		"{C(row, col, val) | ∃a ∈ A, b ∈ B, γ a.row, b.col [C.row = a.row ∧ C.col = b.col ∧ a.col = b.row ∧ C.val = sum(a.val * b.val)]}",
		"{Q(d) | ∃l1 ∈ L [Q.d = l1.d ∧ ¬(∃l2 ∈ L [l2.d <> l1.d])]}",
	}
	for _, src := range srcs {
		c1 := MustParseCollection(src)
		printed := c1.String()
		c2, err := ParseCollection(printed)
		if err != nil {
			t.Fatalf("reparse of %q failed: %v", printed, err)
		}
		if c2.String() != printed {
			t.Errorf("round trip unstable:\n1: %s\n2: %s", printed, c2.String())
		}
	}
}

func TestParseMultiKeyGrouping(t *testing.T) {
	// Matrix multiplication (26) groups on two keys and the binding list
	// continues after the keys.
	src := `{C(row, col, val) | ∃a ∈ A, b ∈ B, γ a.row, b.col
		[C.row = a.row ∧ C.col = b.col ∧ a.col = b.row ∧ C.val = sum(a.val * b.val)]}`
	col := MustParseCollection(src)
	q := col.Body.(*alt.Quantifier)
	if len(q.Grouping.Keys) != 2 {
		t.Fatalf("keys = %d", len(q.Grouping.Keys))
	}
	if _, err := alt.ValidateCollection(col); err != nil {
		t.Fatal(err)
	}
}

func TestParsedQueryEvaluates(t *testing.T) {
	col := MustParseCollection("{Q(A, sm) | ∃r ∈ R, γ r.A [Q.A = r.A ∧ Q.sm = sum(r.B)]}")
	cat := eval.NewCatalog().
		AddRelation(relation.New("R", "A", "B").Add(1, 10).Add(1, 20).Add(2, 5))
	got, err := eval.Eval(col, cat, convention.SetLogic())
	if err != nil {
		t.Fatal(err)
	}
	want := relation.New("W", "A", "sm").Add(1, 30).Add(2, 5)
	if !got.EqualSet(want) {
		t.Fatalf("parsed query evaluates wrong:\n%s", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"{Q(A)",
		"{Q(A) | }",
		"{Q(A) | ∃r ∈ [Q.A = r.A]}",
		"{Q(A) | ∃r ∈ R [Q.A = ]}",
		"{Q(A) | ∃r ∈ R [Q.A ~ r.A]}",
		"{Q() | ∃r ∈ R [r.A = 1]}",
		"{Q(A) | ∃r ∈ R [Q.A = r.A]} extra",
		"{Q(A) | ∃r ∈ R, γ [Q.A = r.A]}",
	}
	for _, src := range cases {
		if _, err := ParseCollection(src); err == nil {
			t.Errorf("ParseCollection(%q) should fail", src)
		}
	}
}

func TestParseQuotedExternalName(t *testing.T) {
	src := `{Q(A) | ∃r ∈ R, f ∈ "Minus" [Q.A = r.A ∧ f.left = r.B]}`
	col := MustParseCollection(src)
	q := col.Body.(*alt.Quantifier)
	if q.Bindings[1].Rel != "Minus" {
		t.Fatalf("quoted relation = %q", q.Bindings[1].Rel)
	}
}

func TestParseComments(t *testing.T) {
	src := "{Q(A) | -- head assignment below\n∃r ∈ R [Q.A = r.A]}"
	if _, err := ParseCollection(src); err != nil {
		t.Fatal(err)
	}
}

func TestParseArithPrecedence(t *testing.T) {
	col := MustParseCollection("{Q(x) | ∃r ∈ R [Q.x = r.a + r.b * r.c]}")
	spine := alt.Spine(col.Body.(*alt.Quantifier).Body)
	pr := spine[0].(*alt.Pred)
	add := pr.Right.(*alt.Arith)
	if add.Op != alt.OpAdd {
		t.Fatalf("top op = %v", add.Op)
	}
	if mul := add.R.(*alt.Arith); mul.Op != alt.OpMul {
		t.Fatal("* should bind tighter than +")
	}
	if !strings.Contains(pr.String(), "(r.b * r.c)") {
		t.Fatal("printing parenthesization broken")
	}
}

// Package arc implements the comprehension-syntax modality of ARC
// (Section 2): a parser and printer for the textual notation
//
//	{Q(A,sm) | ∃r ∈ R, γ r.A [Q.A = r.A ∧ Q.sm = sum(r.B)]}
//
// Both the Unicode symbols (∃ ∈ ∧ ∨ ¬ γ ∅) and ASCII spellings
// (exists, in, and, or, not, gamma, 0/empty) are accepted, so ALTs
// printed with String() parse back (round trip).
package arc

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokSym
)

type token struct {
	kind tokKind
	text string // idents lower-cased for keyword checks; syms literal
	raw  string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lexArc(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		r, sz := utf8.DecodeRuneInString(l.src[l.pos:])
		switch {
		case r == '∃' || r == '∈' || r == '∧' || r == '∨' || r == '¬' || r == 'γ' || r == '∅':
			l.toks = append(l.toks, token{kind: tokSym, text: string(r), pos: l.pos})
			l.pos += sz
		case unicode.IsLetter(r) || r == '_' || r == '$':
			l.lexIdent()
		case r >= '0' && r <= '9':
			l.lexNumber()
		case r == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case r == '"':
			if err := l.lexQuoted(); err != nil {
				return nil, err
			}
		default:
			if err := l.lexSym(); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) {
		r, sz := utf8.DecodeRuneInString(l.src[l.pos:])
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' && r != '$' {
			break
		}
		l.pos += sz
	}
	raw := l.src[start:l.pos]
	l.toks = append(l.toks, token{kind: tokIdent, text: strings.ToLower(raw), raw: raw, pos: start})
}

func (l *lexer) lexNumber() {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '.' && !seenDot && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
			seenDot = true
			l.pos++
			continue
		}
		if c < '0' || c > '9' {
			break
		}
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("arc: unterminated string at %d", start)
}

// lexQuoted handles quoted relation names like "∗" or "-" used for
// external relations.
func (l *lexer) lexQuoted() error {
	start := l.pos
	l.pos++
	idx := strings.IndexByte(l.src[l.pos:], '"')
	if idx < 0 {
		return fmt.Errorf("arc: unterminated quoted name at %d", start)
	}
	raw := l.src[l.pos : l.pos+idx]
	l.pos += idx + 1
	l.toks = append(l.toks, token{kind: tokIdent, text: strings.ToLower(raw), raw: raw, pos: start})
	return nil
}

func (l *lexer) lexSym() error {
	if l.pos+1 < len(l.src) {
		two := l.src[l.pos : l.pos+2]
		switch two {
		case "<>", "<=", ">=", "!=":
			l.toks = append(l.toks, token{kind: tokSym, text: two, pos: l.pos})
			l.pos += 2
			return nil
		}
	}
	c := l.src[l.pos]
	switch c {
	case '{', '}', '(', ')', '[', ']', '|', ',', '.', '=', '<', '>', '+', '-', '*', '/', '!':
		l.toks = append(l.toks, token{kind: tokSym, text: string(c), pos: l.pos})
		l.pos++
		return nil
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
	return fmt.Errorf("arc: unexpected character %q at %d", string(r), l.pos)
}

var _ = strconv.Itoa

package convention

import "testing"

func TestPresets(t *testing.T) {
	if c := SQL(); c.Semantics != Bag || c.NullLogic != ThreeValued || c.EmptyAggregate != NullOnEmpty {
		t.Errorf("SQL preset wrong: %v", c)
	}
	if c := Souffle(); c.Semantics != Set || c.NullLogic != TwoValued || c.EmptyAggregate != ZeroOnEmpty {
		t.Errorf("Souffle preset wrong: %v", c)
	}
	if c := SetLogic(); c.Semantics != Set {
		t.Errorf("SetLogic preset wrong: %v", c)
	}
	if c := SQLDistinct(); c.Semantics != Set || c.EmptyAggregate != NullOnEmpty {
		t.Errorf("SQLDistinct preset wrong: %v", c)
	}
}

func TestZeroValueIsSetLogic(t *testing.T) {
	var c Conventions
	if c != SetLogic() {
		t.Errorf("zero Conventions = %v, want %v", c, SetLogic())
	}
}

func TestStrings(t *testing.T) {
	if SQL().String() != "bag/3VL/sum∅=NULL" {
		t.Errorf("SQL renders %q", SQL().String())
	}
	if Souffle().String() != "set/2VL/sum∅=0" {
		t.Errorf("Souffle renders %q", Souffle().String())
	}
	if Set.String() != "set" || Bag.String() != "bag" {
		t.Error("Semantics rendering")
	}
	if ThreeValued.String() != "3VL" || TwoValued.String() != "2VL" {
		t.Error("NullLogic rendering")
	}
	if NullOnEmpty.String() != "sum∅=NULL" || ZeroOnEmpty.String() != "sum∅=0" {
		t.Error("EmptyAggregate rendering")
	}
}

// Package convention implements the paper's "conventions instead of
// languages" idea (Section 1, Section 2.6, Section 2.7): orthogonal,
// environment-level semantic parameters under which a relational core is
// interpreted. Changing a convention changes observable results but never
// the relational pattern of the query, so the same ARC query can be run
// under SQL conventions, Soufflé conventions, or pure set-logic
// conventions by flipping switches here.
package convention

import "fmt"

// Semantics selects the collection interpretation (Section 2.7).
type Semantics int

const (
	// Set semantics: query results are deduplicated collections.
	Set Semantics = iota
	// Bag semantics: results keep multiplicities (SQL default).
	Bag
)

// String names the semantics for harness output.
func (s Semantics) String() string {
	if s == Bag {
		return "bag"
	}
	return "set"
}

// NullLogic selects how predicates treat missing values (Section 2.10).
type NullLogic int

const (
	// ThreeValued is SQL's Kleene logic: NULL comparisons yield Unknown.
	ThreeValued NullLogic = iota
	// TwoValued has no Unknown; comparisons involving NULL are simply
	// false (languages like Soufflé have no NULL at all, so the case
	// never arises, but the evaluator needs a defined behaviour).
	TwoValued
)

// String names the logic for harness output.
func (n NullLogic) String() string {
	if n == TwoValued {
		return "2VL"
	}
	return "3VL"
}

// EmptyAggregate selects what SUM/AVG/MIN/MAX return over zero input rows
// (Section 2.6: SQL says NULL; Soufflé says 0 for sum — it has no NULL).
type EmptyAggregate int

const (
	// NullOnEmpty is the SQL convention: SUM() over zero rows is NULL.
	NullOnEmpty EmptyAggregate = iota
	// ZeroOnEmpty is the Soufflé convention: SUM() over zero rows is 0.
	ZeroOnEmpty
)

// String names the convention for harness output.
func (e EmptyAggregate) String() string {
	if e == ZeroOnEmpty {
		return "sum∅=0"
	}
	return "sum∅=NULL"
}

// Conventions bundles every orthogonal switch. The zero value is the
// pure-set-logic environment (set semantics, 3VL, SQL aggregates), which
// is what the paper's formal examples assume unless stated otherwise.
type Conventions struct {
	// Semantics is the set/bag switch.
	Semantics Semantics
	// NullLogic is the 2VL/3VL switch.
	NullLogic NullLogic
	// EmptyAggregate is the aggregate-initialization switch.
	EmptyAggregate EmptyAggregate
}

// String renders the convention triple, e.g. "set/3VL/sum∅=NULL".
func (c Conventions) String() string {
	return fmt.Sprintf("%s/%s/%s", c.Semantics, c.NullLogic, c.EmptyAggregate)
}

// SetLogic is the textbook TRC environment: set semantics, three-valued
// null handling, SQL aggregate conventions.
func SetLogic() Conventions {
	return Conventions{Semantics: Set, NullLogic: ThreeValued, EmptyAggregate: NullOnEmpty}
}

// SQL is the SQL environment: bag semantics, 3VL, SUM over empty = NULL.
func SQL() Conventions {
	return Conventions{Semantics: Bag, NullLogic: ThreeValued, EmptyAggregate: NullOnEmpty}
}

// SQLDistinct is SQL with a global DISTINCT (set output) — what the
// paper's SELECT DISTINCT examples produce.
func SQLDistinct() Conventions {
	return Conventions{Semantics: Set, NullLogic: ThreeValued, EmptyAggregate: NullOnEmpty}
}

// Souffle is the Soufflé environment (Section 2.6): set semantics, no
// NULL (two-valued logic), SUM over empty = 0.
func Souffle() Conventions {
	return Conventions{Semantics: Set, NullLogic: TwoValued, EmptyAggregate: ZeroOnEmpty}
}

// Package trc implements the textbook Tuple Relational Calculus front end
// and the two normalization steps of Section 2.1:
//
//  1. scope clarification — whenever a variable is quantified it is also
//     bound to a relation at its quantifier (membership atoms like
//     "s ∈ S" move from the body into the binder), and free variables'
//     memberships become top-level bindings;
//  2. clean heads — body variables never appear in the head; head terms
//     like "r.A" become head attributes assigned via explicit assignment
//     predicates (query (1)).
//
// The loose textbook form {r.A | r∈R ∧ ∃s[r.B=s.B ∧ s.C=0 ∧ s∈S]}
// normalizes to the strict ARC collection
// {Q(A) | ∃r∈R, s∈S[Q.A=r.A ∧ r.B=s.B ∧ s.C=0]}.
package trc

import (
	"fmt"
	"strings"

	"repro/internal/alt"
	"repro/internal/value"
)

// Query is the loose textbook TRC AST.
type Query struct {
	Head []HeadTerm
	Body Form
}

// HeadTerm is one projected term "var.Attr".
type HeadTerm struct {
	Var  string
	Attr string
}

// String renders the loose query.
func (q *Query) String() string {
	parts := make([]string, len(q.Head))
	for i, h := range q.Head {
		parts[i] = h.Var + "." + h.Attr
	}
	return "{" + strings.Join(parts, ", ") + " | " + q.Body.String() + "}"
}

// Form is a loose TRC formula.
type Form interface {
	isForm()
	String() string
}

// FAnd is conjunction.
type FAnd struct{ Kids []Form }

func (*FAnd) isForm() {}

// String renders "a ∧ b".
func (f *FAnd) String() string {
	parts := make([]string, len(f.Kids))
	for i, k := range f.Kids {
		parts[i] = k.String()
	}
	return strings.Join(parts, " ∧ ")
}

// FOr is disjunction.
type FOr struct{ Kids []Form }

func (*FOr) isForm() {}

// String renders "(a ∨ b)".
func (f *FOr) String() string {
	parts := make([]string, len(f.Kids))
	for i, k := range f.Kids {
		parts[i] = k.String()
	}
	return "(" + strings.Join(parts, " ∨ ") + ")"
}

// FNot is negation.
type FNot struct{ Kid Form }

func (*FNot) isForm() {}

// String renders "¬(kid)".
func (f *FNot) String() string { return "¬(" + f.Kid.String() + ")" }

// FMember is a membership atom "v ∈ R" appearing in the body (the loose
// style that step 1 normalizes away).
type FMember struct {
	Var string
	Rel string
}

func (*FMember) isForm() {}

// String renders "v ∈ R".
func (f *FMember) String() string { return f.Var + " ∈ " + f.Rel }

// FCmp is a comparison between terms.
type FCmp struct {
	L, R Term
	Op   value.CmpOp
}

func (*FCmp) isForm() {}

// String renders "l op r".
func (f *FCmp) String() string { return f.L.String() + " " + f.Op.String() + " " + f.R.String() }

// FExists is "∃v1[∈R1], v2… [body]" — sources optional in loose form.
type FExists struct {
	Vars []BindSpec
	Body Form
}

func (*FExists) isForm() {}

// String renders the quantifier.
func (f *FExists) String() string {
	parts := make([]string, len(f.Vars))
	for i, v := range f.Vars {
		if v.Rel != "" {
			parts[i] = v.Var + " ∈ " + v.Rel
		} else {
			parts[i] = v.Var
		}
	}
	body := ""
	if f.Body != nil {
		body = f.Body.String()
	}
	return "∃" + strings.Join(parts, ", ") + "[" + body + "]"
}

// BindSpec is one quantified variable with an optional relation source.
type BindSpec struct {
	Var string
	Rel string
}

// Term is a loose TRC term.
type Term interface {
	isTerm()
	String() string
}

// TRef is "var.Attr".
type TRef struct{ Var, Attr string }

func (TRef) isTerm() {}

// String renders "var.attr".
func (t TRef) String() string { return t.Var + "." + t.Attr }

// TConst is a literal.
type TConst struct{ Val value.Value }

func (TConst) isTerm() {}

// String renders the literal.
func (t TConst) String() string { return t.Val.String() }

// Normalize applies both normalization steps and returns the strict ARC
// collection (head relation "Q"), plus the intermediate scoped form for
// inspection.
func (q *Query) Normalize() (*alt.Collection, *Query, error) {
	scoped, err := q.clarifyScopes()
	if err != nil {
		return nil, nil, err
	}
	col, err := scoped.cleanHeads()
	if err != nil {
		return nil, scoped, err
	}
	if _, err := alt.ValidateCollection(col); err != nil {
		return nil, scoped, fmt.Errorf("trc: normalized query invalid: %w", err)
	}
	return col, scoped, nil
}

// clarifyScopes is step 1: attach membership atoms to quantifiers and
// hoist free variables' memberships into an explicit top-level quantifier.
func (q *Query) clarifyScopes() (*Query, error) {
	body, members, err := pullMembers(q.Body)
	if err != nil {
		return nil, err
	}
	// Free variables of the head and of the remaining body must have a
	// top-level membership.
	var free []BindSpec
	for v, rel := range members {
		free = append(free, BindSpec{Var: v, Rel: rel})
	}
	sortBinds(free)
	if len(free) == 0 {
		return nil, fmt.Errorf("trc: no top-level range variables; every head variable needs a membership like r ∈ R")
	}
	return &Query{
		Head: q.Head,
		Body: &FExists{Vars: free, Body: body},
	}, nil
}

// pullMembers removes top-spine membership atoms from f and resolves
// quantified variables' sources recursively.
func pullMembers(f Form) (Form, map[string]string, error) {
	members := map[string]string{}
	var rewrite func(Form, bool) (Form, error)
	rewrite = func(f Form, topSpine bool) (Form, error) {
		switch x := f.(type) {
		case nil:
			return nil, nil
		case *FAnd:
			var kids []Form
			for _, k := range x.Kids {
				nk, err := rewrite(k, topSpine)
				if err != nil {
					return nil, err
				}
				if nk != nil {
					kids = append(kids, nk)
				}
			}
			switch len(kids) {
			case 0:
				return nil, nil
			case 1:
				return kids[0], nil
			}
			return &FAnd{Kids: kids}, nil
		case *FMember:
			if !topSpine {
				return nil, fmt.Errorf("trc: membership %s appears under ∨/¬; move it to the quantifier", x)
			}
			if prev, dup := members[x.Var]; dup && prev != x.Rel {
				return nil, fmt.Errorf("trc: variable %q ranges over both %s and %s", x.Var, prev, x.Rel)
			}
			members[x.Var] = x.Rel
			return nil, nil
		case *FExists:
			inner, innerMembers, err := pullMembers(x.Body)
			if err != nil {
				return nil, err
			}
			vars := make([]BindSpec, len(x.Vars))
			for i, v := range x.Vars {
				rel := v.Rel
				if rel == "" {
					rel = innerMembers[v.Var]
					delete(innerMembers, v.Var)
				}
				if rel == "" {
					return nil, fmt.Errorf("trc: quantified variable %q has no relation membership", v.Var)
				}
				vars[i] = BindSpec{Var: v.Var, Rel: rel}
			}
			// Leftover inner memberships belong to outer scopes.
			for v, rel := range innerMembers {
				if !topSpine {
					return nil, fmt.Errorf("trc: membership %s ∈ %s cannot cross a ∨/¬ boundary", v, rel)
				}
				if prev, dup := members[v]; dup && prev != rel {
					return nil, fmt.Errorf("trc: variable %q ranges over both %s and %s", v, prev, rel)
				}
				members[v] = rel
			}
			return &FExists{Vars: vars, Body: inner}, nil
		case *FOr:
			var kids []Form
			for _, k := range x.Kids {
				nk, err := rewrite(k, false)
				if err != nil {
					return nil, err
				}
				kids = append(kids, nk)
			}
			return &FOr{Kids: kids}, nil
		case *FNot:
			nk, err := rewrite(x.Kid, false)
			if err != nil {
				return nil, err
			}
			return &FNot{Kid: nk}, nil
		case *FCmp:
			return x, nil
		}
		return nil, fmt.Errorf("trc: unknown form %T", f)
	}
	out, err := rewrite(f, true)
	if err != nil {
		return nil, nil, err
	}
	return out, members, nil
}

func sortBinds(bs []BindSpec) {
	for i := 1; i < len(bs); i++ {
		for j := i; j > 0 && bs[j].Var < bs[j-1].Var; j-- {
			bs[j], bs[j-1] = bs[j-1], bs[j]
		}
	}
}

// cleanHeads is step 2: head terms become head attributes with explicit
// assignment predicates, and the loose forms convert to ALT nodes.
func (q *Query) cleanHeads() (*alt.Collection, error) {
	top, ok := q.Body.(*FExists)
	if !ok {
		return nil, fmt.Errorf("trc: clarifyScopes must run first")
	}
	attrs := make([]string, len(q.Head))
	used := map[string]int{}
	var assigns []alt.Formula
	for i, h := range q.Head {
		name := h.Attr
		if n, dup := used[name]; dup {
			used[name] = n + 1
			name = fmt.Sprintf("%s_%d", name, n+1)
		} else {
			used[name] = 1
		}
		attrs[i] = name
		assigns = append(assigns, alt.Eq(alt.Ref("Q", name), alt.Ref(h.Var, h.Attr)))
	}
	body, err := convertForm(top.Body)
	if err != nil {
		return nil, err
	}
	conjs := assigns
	if body != nil {
		conjs = append(conjs, body)
	}
	bindings := make([]*alt.Binding, len(top.Vars))
	for i, v := range top.Vars {
		bindings[i] = alt.Bind(v.Var, v.Rel)
	}
	return alt.Col("Q", attrs, alt.Exists(bindings, alt.AndF(conjs...))), nil
}

func convertForm(f Form) (alt.Formula, error) {
	switch x := f.(type) {
	case nil:
		return nil, nil
	case *FAnd:
		var kids []alt.Formula
		for _, k := range x.Kids {
			nk, err := convertForm(k)
			if err != nil {
				return nil, err
			}
			if nk != nil {
				kids = append(kids, nk)
			}
		}
		return alt.AndF(kids...), nil
	case *FOr:
		var kids []alt.Formula
		for _, k := range x.Kids {
			nk, err := convertForm(k)
			if err != nil {
				return nil, err
			}
			kids = append(kids, nk)
		}
		return alt.OrF(kids...), nil
	case *FNot:
		nk, err := convertForm(x.Kid)
		if err != nil {
			return nil, err
		}
		return alt.NotF(nk), nil
	case *FCmp:
		return &alt.Pred{Left: convertTerm(x.L), Op: x.Op, Right: convertTerm(x.R)}, nil
	case *FExists:
		body, err := convertForm(x.Body)
		if err != nil {
			return nil, err
		}
		bindings := make([]*alt.Binding, len(x.Vars))
		for i, v := range x.Vars {
			if v.Rel == "" {
				return nil, fmt.Errorf("trc: unscoped quantified variable %q", v.Var)
			}
			bindings[i] = alt.Bind(v.Var, v.Rel)
		}
		return alt.Exists(bindings, body), nil
	case *FMember:
		return nil, fmt.Errorf("trc: stray membership %s after scope clarification", x)
	}
	return nil, fmt.Errorf("trc: unknown form %T", f)
}

func convertTerm(t Term) alt.Term {
	switch x := t.(type) {
	case TRef:
		return alt.Ref(x.Var, x.Attr)
	case TConst:
		return alt.CVal(x.Val)
	}
	panic(fmt.Sprintf("trc: unknown term %T", t))
}

package trc

import (
	"strings"
	"testing"

	"repro/internal/alt"
	"repro/internal/convention"
	"repro/internal/eval"
	"repro/internal/relation"
)

func TestSection21Normalization(t *testing.T) {
	// The paper's running example, loose textbook form.
	q := MustParse("{r.A | r ∈ R ∧ ∃s[r.B = s.B ∧ s.C = 0 ∧ s ∈ S]}")
	col, scoped, err := q.Normalize()
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	// Step 1: the membership moved into the quantifier.
	ss := scoped.String()
	if !strings.Contains(ss, "s ∈ S") || strings.Contains(ss, "∧ s ∈ S") {
		t.Errorf("scoped form should bind s at its quantifier: %s", ss)
	}
	// Step 2: clean head with an assignment predicate.
	cs := col.String()
	if !strings.Contains(cs, "Q.A = r.A") {
		t.Errorf("strict form should assign the head: %s", cs)
	}
	// Semantics: equals the hand-built query (1).
	cat := eval.NewCatalog().
		AddRelation(relation.New("R", "A", "B").Add(1, 10).Add(2, 20).Add(3, 30)).
		AddRelation(relation.New("S", "B", "C").Add(10, 0).Add(20, 5).Add(30, 0))
	got, err := eval.Eval(col, cat, convention.SetLogic())
	if err != nil {
		t.Fatal(err)
	}
	want := relation.New("W", "A").Add(1).Add(3)
	if !got.EqualSet(want) {
		t.Fatalf("normalized query result:\n%s", got)
	}
}

func TestASCIIInput(t *testing.T) {
	q := MustParse("{r.A | r in R and exists s[r.B = s.B and s in S]}")
	col, _, err := q.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alt.ValidateCollection(col); err != nil {
		t.Fatal(err)
	}
}

func TestQuantifierWithInlineBinding(t *testing.T) {
	// The intermediate style ∃s∈S[...] is also valid input.
	q := MustParse("{r.A | r ∈ R ∧ ∃s ∈ S[r.B = s.B]}")
	col, _, err := q.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	inner := col.Body.(*alt.Quantifier).Body.(*alt.And)
	_ = inner
}

func TestNegationAndDisjunction(t *testing.T) {
	q := MustParse("{r.A | r ∈ R ∧ ¬(∃s[s.B = r.B ∧ s ∈ S])}")
	col, _, err := q.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	cat := eval.NewCatalog().
		AddRelation(relation.New("R", "A", "B").Add(1, 10).Add(2, 99)).
		AddRelation(relation.New("S", "B").Add(10))
	got, err := eval.Eval(col, cat, convention.SetLogic())
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualSet(relation.New("W", "A").Add(2)) {
		t.Fatalf("negation:\n%s", got)
	}
}

func TestMultipleHeadTermsAndDuplicates(t *testing.T) {
	q := MustParse("{r.A, s.A | r ∈ R ∧ s ∈ S ∧ r.B = s.B}")
	col, _, err := q.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if col.Head.Attrs[0] == col.Head.Attrs[1] {
		t.Fatalf("duplicate head attrs not renamed: %v", col.Head.Attrs)
	}
	cat := eval.NewCatalog().
		AddRelation(relation.New("R", "A", "B").Add(1, 10)).
		AddRelation(relation.New("S", "A", "B").Add(7, 10))
	got, err := eval.Eval(col, cat, convention.SetLogic())
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualSet(relation.New("W", "a", "b").Add(1, 7)) {
		t.Fatalf("two-relation head:\n%s", got)
	}
}

func TestNormalizeErrors(t *testing.T) {
	cases := map[string]string{
		"{r.A | ∃s[s.B = r.B ∧ s ∈ S]}":     "no top-level range variables", // r unbound
		"{r.A | r ∈ R ∧ (s ∈ S ∨ r.A = 1)}": "under ∨",                      // membership under or
		"{r.A | r ∈ R ∧ r ∈ S}":             "ranges over both",             // conflicting membership
		"{r.A | ∃s[r.B = s.B] ∧ r ∈ R}":     "no relation membership",       // s unbound
	}
	for src, want := range cases {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		_, _, err = q.Normalize()
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("%q: got %v, want error containing %q", src, err, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"{r.A",
		"{r.A | }",
		"{r | r ∈ R}",
		"{r.A | r ∈ R ∧ r.B ~ 1}",
		"{r.A | r ∈ R} extra",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestLooseFormString(t *testing.T) {
	q := MustParse("{r.A | r ∈ R ∧ ∃s[r.B = s.B ∧ s ∈ S]}")
	s := q.String()
	if !strings.Contains(s, "{r.A | ") || !strings.Contains(s, "∃s[") {
		t.Fatalf("loose rendering broken: %s", s)
	}
}

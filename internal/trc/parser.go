package trc

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"

	"repro/internal/value"
)

// Parse parses the loose textbook TRC syntax, e.g.
//
//	{r.A | r ∈ R ∧ ∃s[r.B = s.B ∧ s.C = 0 ∧ s ∈ S]}
//
// ASCII spellings (exists, in, and, or, not) are accepted.
func Parse(src string) (*Query, error) {
	toks, err := lexTRC(src)
	if err != nil {
		return nil, err
	}
	p := &tParser{toks: toks}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != teof {
		return nil, p.errf("trailing input %q", p.peek().text)
	}
	return q, nil
}

// MustParse parses or panics; for fixtures.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type tkind int

const (
	teof tkind = iota
	tident
	tnumber
	tstring
	tsym
)

type ttok struct {
	kind tkind
	text string
	raw  string
	pos  int
}

func lexTRC(src string) ([]ttok, error) {
	var toks []ttok
	i := 0
	for i < len(src) {
		r, sz := utf8.DecodeRuneInString(src[i:])
		switch {
		case r == ' ' || r == '\t' || r == '\n' || r == '\r':
			i += sz
		case r == '∃' || r == '∈' || r == '∧' || r == '∨' || r == '¬':
			toks = append(toks, ttok{kind: tsym, text: string(r), pos: i})
			i += sz
		case unicode.IsLetter(r) || r == '_':
			start := i
			for i < len(src) {
				r2, sz2 := utf8.DecodeRuneInString(src[i:])
				if !unicode.IsLetter(r2) && !unicode.IsDigit(r2) && r2 != '_' {
					break
				}
				i += sz2
			}
			raw := src[start:i]
			toks = append(toks, ttok{kind: tident, text: strings.ToLower(raw), raw: raw, pos: start})
		case r >= '0' && r <= '9':
			start := i
			for i < len(src) && (src[i] >= '0' && src[i] <= '9' || src[i] == '.') {
				if src[i] == '.' && (i+1 >= len(src) || src[i+1] < '0' || src[i+1] > '9') {
					break
				}
				i++
			}
			toks = append(toks, ttok{kind: tnumber, text: src[start:i], pos: start})
		case r == '\'':
			j := strings.IndexByte(src[i+1:], '\'')
			if j < 0 {
				return nil, fmt.Errorf("trc: unterminated string at %d", i)
			}
			toks = append(toks, ttok{kind: tstring, text: src[i+1 : i+1+j], pos: i})
			i += j + 2
		default:
			if i+1 < len(src) {
				switch src[i : i+2] {
				case "<>", "<=", ">=", "!=":
					toks = append(toks, ttok{kind: tsym, text: src[i : i+2], pos: i})
					i += 2
					continue
				}
			}
			switch src[i] {
			case '{', '}', '[', ']', '(', ')', '|', ',', '.', '=', '<', '>':
				toks = append(toks, ttok{kind: tsym, text: string(src[i]), pos: i})
				i++
			default:
				return nil, fmt.Errorf("trc: unexpected character %q at %d", string(r), i)
			}
		}
	}
	toks = append(toks, ttok{kind: teof, pos: len(src)})
	return toks, nil
}

type tParser struct {
	toks []ttok
	pos  int
}

func (p *tParser) peek() ttok { return p.toks[p.pos] }
func (p *tParser) next() ttok {
	t := p.toks[p.pos]
	if t.kind != teof {
		p.pos++
	}
	return t
}

func (p *tParser) errf(format string, args ...any) error {
	return fmt.Errorf("trc: %s (near offset %d)", fmt.Sprintf(format, args...), p.peek().pos)
}

func (p *tParser) acceptSym(s string) bool {
	if t := p.peek(); t.kind == tsym && t.text == s {
		p.pos++
		return true
	}
	return false
}

func (p *tParser) expectSym(s string) error {
	if !p.acceptSym(s) {
		return p.errf("expected %q, found %q", s, p.peek().text)
	}
	return nil
}

func (p *tParser) acceptKw(w string) bool {
	if t := p.peek(); t.kind == tident && t.text == w {
		p.pos++
		return true
	}
	return false
}

func (p *tParser) query() (*Query, error) {
	if err := p.expectSym("{"); err != nil {
		return nil, err
	}
	q := &Query{}
	for {
		v := p.next()
		if v.kind != tident {
			return nil, p.errf("expected head term, found %q", v.text)
		}
		if err := p.expectSym("."); err != nil {
			return nil, err
		}
		a := p.next()
		if a.kind != tident {
			return nil, p.errf("expected attribute after %q.", v.raw)
		}
		q.Head = append(q.Head, HeadTerm{Var: v.raw, Attr: a.raw})
		if !p.acceptSym(",") {
			break
		}
	}
	if err := p.expectSym("|"); err != nil {
		return nil, err
	}
	body, err := p.formula()
	if err != nil {
		return nil, err
	}
	q.Body = body
	if err := p.expectSym("}"); err != nil {
		return nil, err
	}
	return q, nil
}

func (p *tParser) formula() (Form, error) {
	left, err := p.andForm()
	if err != nil {
		return nil, err
	}
	kids := []Form{left}
	for p.acceptSym("∨") || p.acceptKw("or") {
		k, err := p.andForm()
		if err != nil {
			return nil, err
		}
		kids = append(kids, k)
	}
	if len(kids) == 1 {
		return left, nil
	}
	return &FOr{Kids: kids}, nil
}

func (p *tParser) andForm() (Form, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	kids := []Form{left}
	for p.acceptSym("∧") || p.acceptKw("and") {
		k, err := p.unary()
		if err != nil {
			return nil, err
		}
		kids = append(kids, k)
	}
	if len(kids) == 1 {
		return left, nil
	}
	return &FAnd{Kids: kids}, nil
}

func (p *tParser) unary() (Form, error) {
	if p.acceptSym("¬") || p.acceptKw("not") {
		k, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &FNot{Kid: k}, nil
	}
	if p.acceptSym("∃") || p.acceptKw("exists") {
		return p.exists()
	}
	if p.acceptSym("(") {
		f, err := p.formula()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return f, nil
	}
	return p.atomOrCmp()
}

func (p *tParser) exists() (Form, error) {
	e := &FExists{}
	for {
		v := p.next()
		if v.kind != tident {
			return nil, p.errf("expected quantified variable, found %q", v.text)
		}
		bs := BindSpec{Var: v.raw}
		if p.acceptSym("∈") || p.acceptKw("in") {
			rel := p.next()
			if rel.kind != tident {
				return nil, p.errf("expected relation after ∈")
			}
			bs.Rel = rel.raw
		}
		e.Vars = append(e.Vars, bs)
		if !p.acceptSym(",") {
			break
		}
	}
	if err := p.expectSym("["); err != nil {
		return nil, err
	}
	body, err := p.formula()
	if err != nil {
		return nil, err
	}
	e.Body = body
	if err := p.expectSym("]"); err != nil {
		return nil, err
	}
	return e, nil
}

// atomOrCmp parses "v ∈ R" memberships and comparisons.
func (p *tParser) atomOrCmp() (Form, error) {
	l, err := p.term()
	if err != nil {
		return nil, err
	}
	// Membership: a bare variable followed by ∈.
	if ref, ok := l.(TRef); ok && ref.Attr == "" {
		if p.acceptSym("∈") || p.acceptKw("in") {
			rel := p.next()
			if rel.kind != tident {
				return nil, p.errf("expected relation after ∈")
			}
			return &FMember{Var: ref.Var, Rel: rel.raw}, nil
		}
		return nil, p.errf("bare variable %q needs ∈ or an attribute", ref.Var)
	}
	t := p.peek()
	if t.kind != tsym {
		return nil, p.errf("expected comparison, found %q", t.text)
	}
	var op value.CmpOp
	switch t.text {
	case "=":
		op = value.Eq
	case "<>", "!=":
		op = value.Ne
	case "<":
		op = value.Lt
	case "<=":
		op = value.Le
	case ">":
		op = value.Gt
	case ">=":
		op = value.Ge
	default:
		return nil, p.errf("expected comparison operator, found %q", t.text)
	}
	p.pos++
	r, err := p.term()
	if err != nil {
		return nil, err
	}
	return &FCmp{L: l, R: r, Op: op}, nil
}

func (p *tParser) term() (Term, error) {
	t := p.next()
	switch t.kind {
	case tnumber:
		if strings.Contains(t.text, ".") {
			f, _ := strconv.ParseFloat(t.text, 64)
			return TConst{Val: value.Float(f)}, nil
		}
		i, _ := strconv.ParseInt(t.text, 10, 64)
		return TConst{Val: value.Int(i)}, nil
	case tstring:
		return TConst{Val: value.Str(t.text)}, nil
	case tident:
		if p.acceptSym(".") {
			a := p.next()
			if a.kind != tident {
				return nil, p.errf("expected attribute after %q.", t.raw)
			}
			return TRef{Var: t.raw, Attr: a.raw}, nil
		}
		return TRef{Var: t.raw}, nil
	}
	return nil, p.errf("expected term, found %q", t.text)
}

package alt

import (
	"fmt"

	"repro/internal/value"
)

// RefKind says what an attribute reference resolved to.
type RefKind int

const (
	// RefBinding: the variable is a range variable bound in an enclosing
	// scope.
	RefBinding RefKind = iota
	// RefHead: the variable names the head relation of an enclosing
	// collection (an assignment target or abstract-relation parameter).
	RefHead
)

// Ref is the resolution of one attribute reference — one of the "red
// arrows" of Fig 2a that turn the ALT into a higraph.
type Resolution struct {
	Kind    RefKind
	Binding *Binding    // set when Kind == RefBinding
	Col     *Collection // set when Kind == RefHead
}

// PredKind classifies predicates per Section 2.1.
type PredKind int

const (
	// PredComparison relates two body values.
	PredComparison PredKind = iota
	// PredAssignment gives a head attribute its value (Q.A = r.A).
	PredAssignment
)

// Link is the result of name resolution over a collection or sentence:
// the annotated/decorated tree the paper calls the Abstract Language
// Higraph. All maps are keyed by node identity.
type Link struct {
	// Refs resolves every attribute reference.
	Refs map[*AttrRef]Resolution
	// Preds classifies every predicate.
	Preds map[*Pred]PredKind
	// HeadSide gives, for assignment predicates, which side is the head
	// reference: 0 = left, 1 = right.
	HeadSide map[*Pred]int
	// RecursiveBindings maps bindings that range over the head of an
	// enclosing collection (the recursion of Section 2.9).
	RecursiveBindings map[*Binding]*Collection
	// RecursiveCols marks collections whose body references their own
	// head relation.
	RecursiveCols map[*Collection]bool
	// ConstBindings holds the synthetic bindings generated for constant
	// join-annotation leaves (Section 2.11); eval enumerates them as
	// singleton relations.
	ConstBindings map[*JoinConst]*Binding
	// ConstOfBinding is the reverse of ConstBindings.
	ConstOfBinding map[*Binding]value.Value
	// Correlated maps nested collections to the outer variables they
	// reference (the correlation / lateral structure).
	Correlated map[*Collection][]string
	// BindingQuantifier maps each binding (including synthetic constant
	// bindings) to its quantifier.
	BindingQuantifier map[*Binding]*Quantifier
	// EnclosingCol maps each quantifier to the collection whose body it
	// belongs to (nil inside a bare sentence).
	EnclosingCol map[*Quantifier]*Collection
}

func newLink() *Link {
	return &Link{
		Refs:              make(map[*AttrRef]Resolution),
		Preds:             make(map[*Pred]PredKind),
		HeadSide:          make(map[*Pred]int),
		RecursiveBindings: make(map[*Binding]*Collection),
		RecursiveCols:     make(map[*Collection]bool),
		ConstBindings:     make(map[*JoinConst]*Binding),
		ConstOfBinding:    make(map[*Binding]value.Value),
		Correlated:        make(map[*Collection][]string),
		BindingQuantifier: make(map[*Binding]*Quantifier),
		EnclosingCol:      make(map[*Quantifier]*Collection),
	}
}

// scope is a lexical frame of range variables.
type scope struct {
	parent *scope
	byVar  map[string]*Binding
	// colDepth is the number of enclosing collections when the frame was
	// created, used to detect correlation across collection boundaries.
	colDepth int
}

func (s *scope) lookup(v string) (*Binding, int) {
	for cur := s; cur != nil; cur = cur.parent {
		if b, ok := cur.byVar[v]; ok {
			return b, cur.colDepth
		}
	}
	return nil, 0
}

type linker struct {
	link *Link
	cols []*Collection // stack of enclosing collections, innermost last
	errs []string
}

func (l *linker) errorf(format string, args ...any) {
	l.errs = append(l.errs, fmt.Sprintf(format, args...))
}

// LinkCollection resolves names in c and returns the annotated Link.
// Unresolvable variables, duplicate bindings, and malformed join
// annotations are reported as a single error listing every problem.
func LinkCollection(c *Collection) (*Link, error) {
	l := &linker{link: newLink()}
	l.collection(c, nil)
	if len(l.errs) > 0 {
		return l.link, fmt.Errorf("link: %s", joinErrs(l.errs))
	}
	return l.link, nil
}

// LinkSentence resolves names in a headless Boolean sentence.
func LinkSentence(s *Sentence) (*Link, error) {
	l := &linker{link: newLink()}
	l.formula(s.Body, &scope{byVar: map[string]*Binding{}})
	if len(l.errs) > 0 {
		return l.link, fmt.Errorf("link: %s", joinErrs(l.errs))
	}
	return l.link, nil
}

func joinErrs(errs []string) string {
	out := ""
	for i, e := range errs {
		if i > 0 {
			out += "; "
		}
		out += e
	}
	return out
}

func (l *linker) collection(c *Collection, outer *scope) {
	l.cols = append(l.cols, c)
	inner := &scope{parent: outer, byVar: map[string]*Binding{}, colDepth: len(l.cols)}
	l.formula(c.Body, inner)
	l.cols = l.cols[:len(l.cols)-1]
}

func (l *linker) formula(f Formula, sc *scope) {
	switch x := f.(type) {
	case nil:
	case *And:
		for _, k := range x.Kids {
			l.formula(k, sc)
		}
	case *Or:
		for _, k := range x.Kids {
			l.formula(k, sc)
		}
	case *Not:
		l.formula(x.Kid, sc)
	case *Pred:
		l.pred(x, sc)
	case *IsNull:
		for _, r := range TermAttrRefs(x.Arg, nil) {
			l.resolve(r, sc)
		}
	case *Quantifier:
		l.quantifier(x, sc)
	default:
		l.errorf("unknown formula node %T", f)
	}
}

func (l *linker) quantifier(q *Quantifier, sc *scope) {
	if len(l.cols) > 0 {
		l.link.EnclosingCol[q] = l.cols[len(l.cols)-1]
	}
	qs := &scope{parent: sc, byVar: map[string]*Binding{}, colDepth: sc.colDepth}
	for _, b := range q.Bindings {
		if b.Var == "" {
			l.errorf("binding with empty variable name")
			continue
		}
		if _, dup := qs.byVar[b.Var]; dup {
			l.errorf("duplicate binding variable %q in one quantifier", b.Var)
		}
		// Nested collection sources see the bindings declared so far
		// (lateral, left-to-right), plus everything outer.
		if b.Sub != nil {
			before := len(l.errs)
			l.subCollection(b.Sub, qs)
			_ = before
		} else if b.Rel == "" {
			l.errorf("binding %q has neither a relation nor a collection source", b.Var)
		} else if col := l.enclosingHead(b.Rel); col != nil {
			l.link.RecursiveBindings[b] = col
			l.link.RecursiveCols[col] = true
		}
		qs.byVar[b.Var] = b
		l.link.BindingQuantifier[b] = q
	}
	if q.Join != nil {
		l.joinExpr(q.Join, q, qs)
	}
	if q.Grouping != nil {
		for _, k := range q.Grouping.Keys {
			l.resolve(k, qs)
		}
	}
	l.formula(q.Body, qs)
}

// subCollection links a nested collection source and records correlation.
func (l *linker) subCollection(c *Collection, outer *scope) {
	depthBefore := len(l.cols)
	marker := len(l.link.Refs)
	_ = marker
	l.cols = append(l.cols, c)
	inner := &scope{parent: outer, byVar: map[string]*Binding{}, colDepth: len(l.cols)}
	// Track which refs resolve to bindings declared at colDepth <= depthBefore.
	pre := l.snapshotRefs()
	l.formula(c.Body, inner)
	for r, ref := range l.link.Refs {
		if _, seen := pre[r]; seen {
			continue
		}
		if ref.Kind == RefBinding {
			if d, ok := l.refDepth(ref.Binding, outer); ok && d <= depthBefore {
				l.addCorrelation(c, r.Var)
			}
		}
	}
	l.cols = l.cols[:len(l.cols)-1]
}

func (l *linker) snapshotRefs() map[*AttrRef]struct{} {
	m := make(map[*AttrRef]struct{}, len(l.link.Refs))
	for r := range l.link.Refs {
		m[r] = struct{}{}
	}
	return m
}

// refDepth finds the collection depth at which a binding's frame lives by
// searching outward from sc.
func (l *linker) refDepth(b *Binding, sc *scope) (int, bool) {
	for cur := sc; cur != nil; cur = cur.parent {
		if cur.byVar[b.Var] == b {
			return cur.colDepth, true
		}
	}
	return 0, false
}

func (l *linker) addCorrelation(c *Collection, v string) {
	for _, existing := range l.link.Correlated[c] {
		if existing == v {
			return
		}
	}
	l.link.Correlated[c] = append(l.link.Correlated[c], v)
}

func (l *linker) joinExpr(j JoinExpr, q *Quantifier, qs *scope) {
	seen := map[string]bool{}
	var walk func(JoinExpr)
	walk = func(e JoinExpr) {
		switch x := e.(type) {
		case *JoinVar:
			if _, ok := qs.byVar[x.Var]; !ok {
				l.errorf("join annotation references %q, not bound in this quantifier", x.Var)
				return
			}
			if seen[x.Var] {
				l.errorf("join annotation references %q twice", x.Var)
			}
			seen[x.Var] = true
		case *JoinConst:
			if x.Var == "" {
				x.Var = fmt.Sprintf("$c%d", len(l.link.ConstBindings)+1)
			}
			if _, dup := qs.byVar[x.Var]; dup {
				l.errorf("constant join leaf variable %q collides with a binding", x.Var)
			}
			b := &Binding{Var: x.Var, Rel: "$const"}
			l.link.ConstBindings[x] = b
			l.link.ConstOfBinding[b] = x.Val
			l.link.BindingQuantifier[b] = q
			qs.byVar[x.Var] = b
		case *JoinOp:
			switch x.Kind {
			case JoinLeft, JoinFull:
				if len(x.Kids) != 2 {
					l.errorf("%s join annotation must be binary, has %d children", x.Kind, len(x.Kids))
				}
			case JoinInner:
				if len(x.Kids) < 1 {
					l.errorf("inner join annotation needs at least one child")
				}
			}
			for _, k := range x.Kids {
				walk(k)
			}
		}
	}
	walk(j)
}

func (l *linker) pred(p *Pred, sc *scope) {
	for _, r := range TermAttrRefs(p.Left, nil) {
		l.resolve(r, sc)
	}
	for _, r := range TermAttrRefs(p.Right, nil) {
		l.resolve(r, sc)
	}
	// Classification: an assignment predicate is an equality whose one
	// side is a bare head attribute reference.
	l.link.Preds[p] = PredComparison
	if p.Op != value.Eq {
		return
	}
	lh := l.isHeadRef(p.Left)
	rh := l.isHeadRef(p.Right)
	switch {
	case lh && !l.containsHeadRef(p.Right):
		l.link.Preds[p] = PredAssignment
		l.link.HeadSide[p] = 0
	case rh && !l.containsHeadRef(p.Left):
		l.link.Preds[p] = PredAssignment
		l.link.HeadSide[p] = 1
	}
}

func (l *linker) isHeadRef(t Term) bool {
	r, ok := t.(*AttrRef)
	if !ok {
		return false
	}
	ref, ok := l.link.Refs[r]
	return ok && ref.Kind == RefHead
}

func (l *linker) containsHeadRef(t Term) bool {
	for _, r := range TermAttrRefs(t, nil) {
		if ref, ok := l.link.Refs[r]; ok && ref.Kind == RefHead {
			return true
		}
	}
	return false
}

// resolve binds one attribute reference: range variables win over head
// names; head names resolve innermost-first.
func (l *linker) resolve(r *AttrRef, sc *scope) {
	if b, _ := sc.lookup(r.Var); b != nil {
		l.link.Refs[r] = Resolution{Kind: RefBinding, Binding: b}
		return
	}
	if col := l.enclosingHead(r.Var); col != nil {
		if !col.Head.HasAttr(r.Attr) {
			l.errorf("head %s has no attribute %q (in %s)", col.Head.String(), r.Attr, r.String())
		}
		l.link.Refs[r] = Resolution{Kind: RefHead, Col: col}
		return
	}
	l.errorf("unbound variable %q in %s", r.Var, r.String())
}

func (l *linker) enclosingHead(name string) *Collection {
	for i := len(l.cols) - 1; i >= 0; i-- {
		if l.cols[i].Head.Rel == name {
			return l.cols[i]
		}
	}
	return nil
}

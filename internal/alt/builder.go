package alt

import "repro/internal/value"

// Fluent constructors used by translators, experiments, and tests to
// assemble ALTs without literal-struct noise.

// Ref builds an attribute reference var.attr.
func Ref(v, attr string) *AttrRef { return &AttrRef{Var: v, Attr: attr} }

// CInt builds an integer constant term.
func CInt(i int64) *Const { return &Const{Val: value.Int(i)} }

// CFloat builds a float constant term.
func CFloat(f float64) *Const { return &Const{Val: value.Float(f)} }

// CStr builds a string constant term.
func CStr(s string) *Const { return &Const{Val: value.Str(s)} }

// CNull builds the NULL constant term.
func CNull() *Const { return &Const{Val: value.Null()} }

// CVal builds a constant term from a value.
func CVal(v value.Value) *Const { return &Const{Val: v} }

// Eq builds l = r.
func Eq(l, r Term) *Pred { return &Pred{Left: l, Op: value.Eq, Right: r} }

// Ne builds l <> r.
func Ne(l, r Term) *Pred { return &Pred{Left: l, Op: value.Ne, Right: r} }

// Lt builds l < r.
func Lt(l, r Term) *Pred { return &Pred{Left: l, Op: value.Lt, Right: r} }

// Le builds l <= r.
func Le(l, r Term) *Pred { return &Pred{Left: l, Op: value.Le, Right: r} }

// Gt builds l > r.
func Gt(l, r Term) *Pred { return &Pred{Left: l, Op: value.Gt, Right: r} }

// Ge builds l >= r.
func Ge(l, r Term) *Pred { return &Pred{Left: l, Op: value.Ge, Right: r} }

// Sum builds sum(t).
func Sum(t Term) *Agg { return &Agg{Func: AggSum, Arg: t} }

// Count builds count(t).
func Count(t Term) *Agg { return &Agg{Func: AggCount, Arg: t} }

// CountDistinct builds countdistinct(t).
func CountDistinct(t Term) *Agg { return &Agg{Func: AggCountDistinct, Arg: t} }

// Avg builds avg(t).
func Avg(t Term) *Agg { return &Agg{Func: AggAvg, Arg: t} }

// Min builds min(t).
func Min(t Term) *Agg { return &Agg{Func: AggMin, Arg: t} }

// Max builds max(t).
func Max(t Term) *Agg { return &Agg{Func: AggMax, Arg: t} }

// Plus builds l + r.
func Plus(l, r Term) *Arith { return &Arith{Op: OpAdd, L: l, R: r} }

// Minus builds l - r.
func Minus(l, r Term) *Arith { return &Arith{Op: OpSub, L: l, R: r} }

// Times builds l * r.
func Times(l, r Term) *Arith { return &Arith{Op: OpMul, L: l, R: r} }

// DivBy builds l / r.
func DivBy(l, r Term) *Arith { return &Arith{Op: OpDiv, L: l, R: r} }

// AndF builds a conjunction.
func AndF(kids ...Formula) *And { return &And{Kids: kids} }

// OrF builds a disjunction.
func OrF(kids ...Formula) *Or { return &Or{Kids: kids} }

// NotF builds a negation.
func NotF(kid Formula) *Not { return &Not{Kid: kid} }

// Null builds "t is null".
func Null(t Term) *IsNull { return &IsNull{Arg: t} }

// NotNull builds "t is not null".
func NotNull(t Term) *IsNull { return &IsNull{Arg: t, Negated: true} }

// Bind builds "v ∈ rel".
func Bind(v, rel string) *Binding { return &Binding{Var: v, Rel: rel} }

// BindSub builds "v ∈ {collection}".
func BindSub(v string, c *Collection) *Binding { return &Binding{Var: v, Sub: c} }

// Exists builds a plain existential scope.
func Exists(bindings []*Binding, body Formula) *Quantifier {
	return &Quantifier{Bindings: bindings, Body: body}
}

// ExistsG builds a grouping scope; keys nil/empty means γ∅.
func ExistsG(bindings []*Binding, keys []*AttrRef, body Formula) *Quantifier {
	return &Quantifier{Bindings: bindings, Grouping: &Grouping{Keys: keys}, Body: body}
}

// ExistsJ builds an existential scope with a join annotation.
func ExistsJ(bindings []*Binding, join JoinExpr, body Formula) *Quantifier {
	return &Quantifier{Bindings: bindings, Join: join, Body: body}
}

// ExistsGJ builds a grouping scope with a join annotation.
func ExistsGJ(bindings []*Binding, keys []*AttrRef, join JoinExpr, body Formula) *Quantifier {
	return &Quantifier{Bindings: bindings, Grouping: &Grouping{Keys: keys}, Join: join, Body: body}
}

// JV is a join-annotation variable leaf.
func JV(v string) *JoinVar { return &JoinVar{Var: v} }

// JC is a join-annotation constant leaf (virtual singleton relation).
func JC(val value.Value, as string) *JoinConst { return &JoinConst{Val: val, Var: as} }

// Inner builds an inner join-annotation node.
func Inner(kids ...JoinExpr) *JoinOp { return &JoinOp{Kind: JoinInner, Kids: kids} }

// LeftJ builds a left outer join-annotation node.
func LeftJ(l, r JoinExpr) *JoinOp { return &JoinOp{Kind: JoinLeft, Kids: []JoinExpr{l, r}} }

// FullJ builds a full outer join-annotation node.
func FullJ(l, r JoinExpr) *JoinOp { return &JoinOp{Kind: JoinFull, Kids: []JoinExpr{l, r}} }

// Col builds a collection {rel(attrs…) | body}.
func Col(rel string, attrs []string, body Formula) *Collection {
	return &Collection{Head: Head{Rel: rel, Attrs: attrs}, Body: body}
}

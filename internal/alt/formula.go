package alt

import (
	"strings"

	"repro/internal/value"
)

// Formula is the logical vocabulary of an ARC body: conjunction,
// disjunction, negation, quantified scopes, and predicates.
type Formula interface {
	isFormula()
	// String renders the formula in ARC comprehension surface syntax.
	String() string
}

// And is n-ary conjunction.
type And struct {
	Kids []Formula
}

func (*And) isFormula() {}

// String renders "a ∧ b ∧ c".
func (a *And) String() string { return joinFormulas(a.Kids, " ∧ ") }

// Or is n-ary disjunction (also how multiple Datalog rules with the same
// head are written as one definition, Section 2.9).
type Or struct {
	Kids []Formula
}

func (*Or) isFormula() {}

// String renders "a ∨ b".
func (o *Or) String() string { return "(" + joinFormulas(o.Kids, " ∨ ") + ")" }

// Not is negation; its scope is explicit, per the Relational Diagrams
// treatment of negation scopes.
type Not struct {
	Kid Formula
}

func (*Not) isFormula() {}

// String renders "¬(kid)".
func (n *Not) String() string { return "¬(" + n.Kid.String() + ")" }

// Pred is a comparison or assignment predicate between two terms. Linking
// classifies the kind (Section 2.1: assignment predicates like Q.A = r.A
// vs comparison predicates like r.B = s.B).
type Pred struct {
	Left  Term
	Op    value.CmpOp
	Right Term
}

func (*Pred) isFormula() {}

// String renders "l op r".
func (p *Pred) String() string {
	return p.Left.String() + " " + p.Op.String() + " " + p.Right.String()
}

// IsNull is the "t is [not] null" predicate of Section 2.10.
type IsNull struct {
	Arg     Term
	Negated bool
}

func (*IsNull) isFormula() {}

// String renders "t is null" or "t is not null".
func (n *IsNull) String() string {
	if n.Negated {
		return n.Arg.String() + " is not null"
	}
	return n.Arg.String() + " is null"
}

// Quantifier is an existential scope introducing one or more bindings
// (two bindings can share a quantifier, Section 2.1), optionally a
// grouping operator (Section 2.5), and optionally a join annotation
// (Section 2.11). The body is the formula interpreted within the scope.
type Quantifier struct {
	Bindings []*Binding
	Grouping *Grouping
	Join     JoinExpr
	Body     Formula
}

func (*Quantifier) isFormula() {}

// String renders "∃v∈R, w∈S, γ k [body]".
func (q *Quantifier) String() string {
	var b strings.Builder
	b.WriteString("∃")
	for i, bd := range q.Bindings {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(bd.String())
	}
	if q.Grouping != nil {
		b.WriteString(", ")
		b.WriteString(q.Grouping.String())
	}
	if q.Join != nil {
		b.WriteString(", ")
		b.WriteString(q.Join.String())
	}
	b.WriteString(" [")
	if q.Body != nil {
		b.WriteString(q.Body.String())
	}
	b.WriteString("]")
	return b.String()
}

// Binding introduces a range variable over a source: either a named
// relation (base, intensional, external, abstract, or the recursive head)
// or a nested collection (the lateral pattern of Section 2.4).
type Binding struct {
	Var string
	// Rel names the source relation; empty when Sub is set.
	Rel string
	// Sub is a nested comprehension source; nil when Rel is set.
	Sub *Collection
}

// String renders "v ∈ R" or "v ∈ {…}".
func (b *Binding) String() string {
	if b.Sub != nil {
		return b.Var + " ∈ " + b.Sub.String()
	}
	return b.Var + " ∈ " + b.Rel
}

// Grouping is the γ operator. Empty Keys means γ∅ ("group by true"):
// exactly one group, even over zero tuples — the distinction that decides
// the COUNT bug (Section 3.2).
type Grouping struct {
	Keys []*AttrRef
}

// String renders "γ k1,k2" or "γ ∅".
func (g *Grouping) String() string {
	if len(g.Keys) == 0 {
		return "γ ∅"
	}
	parts := make([]string, len(g.Keys))
	for i, k := range g.Keys {
		parts[i] = k.String()
	}
	return "γ " + strings.Join(parts, ",")
}

// JoinKind enumerates join-annotation node kinds (Section 2.11).
type JoinKind int

const (
	// JoinInner is the k-ary inner join (the default for unannotated
	// scopes).
	JoinInner JoinKind = iota
	// JoinLeft is the binary left outer join; the second child is the
	// nullable side.
	JoinLeft
	// JoinFull is the binary full outer join.
	JoinFull
)

// String renders inner/left/full.
func (k JoinKind) String() string {
	switch k {
	case JoinInner:
		return "inner"
	case JoinLeft:
		return "left"
	case JoinFull:
		return "full"
	}
	return "join?"
}

// JoinExpr is a node of a join annotation: a binding-variable leaf, a
// constant leaf (a virtual singleton relation, Section 2.11), or an
// inner/left/full combination.
type JoinExpr interface {
	isJoin()
	String() string
}

// JoinVar is a leaf naming a binding variable of the same quantifier.
type JoinVar struct {
	Var string
}

func (*JoinVar) isJoin() {}

// String renders the variable name.
func (j *JoinVar) String() string { return j.Var }

// JoinConst is a constant leaf: a virtual unary singleton relation
// containing Val, bound to the generated variable Var with attribute
// "val" so predicates can reference it.
type JoinConst struct {
	Val value.Value
	Var string
}

func (*JoinConst) isJoin() {}

// String renders "val AS var".
func (j *JoinConst) String() string { return j.Val.String() + " AS " + j.Var }

// JoinOp combines children with inner (k-ary) or left/full (binary).
type JoinOp struct {
	Kind JoinKind
	Kids []JoinExpr
}

func (*JoinOp) isJoin() {}

// String renders "kind(a, b, …)".
func (j *JoinOp) String() string {
	parts := make([]string, len(j.Kids))
	for i, k := range j.Kids {
		parts[i] = k.String()
	}
	return j.Kind.String() + "(" + strings.Join(parts, ", ") + ")"
}

// JoinVars appends the binding variables (including generated constant
// variables) under j to dst, left to right.
func JoinVars(j JoinExpr, dst []string) []string {
	switch x := j.(type) {
	case *JoinVar:
		dst = append(dst, x.Var)
	case *JoinConst:
		dst = append(dst, x.Var)
	case *JoinOp:
		for _, k := range x.Kids {
			dst = JoinVars(k, dst)
		}
	}
	return dst
}

func joinFormulas(fs []Formula, sep string) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = f.String()
	}
	return strings.Join(parts, sep)
}

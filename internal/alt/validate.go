package alt

import (
	"fmt"
)

// Validator checks the structural rules the paper states for ARC; it is
// the machine-facing validation layer an NL2SQL system would target
// (Section 4: "well-scoped variables, grouping legality, correlation
// shape"). Linking must succeed first; Validate* runs both.

// Mode selects how strictly heads are checked.
type Mode int

const (
	// Strict is for queries and views: heads must be clean and fully
	// assigned in every disjunct.
	Strict Mode = iota
	// Abstract is for abstract relations (Section 2.13.2): head
	// attributes may be used as free parameters in comparison predicates
	// and need not be assigned (the definition may be unsafe on its own).
	Abstract
)

// ValidateCollection links and validates a collection as a strict query.
func ValidateCollection(c *Collection) (*Link, error) {
	return validate(c, Strict)
}

// ValidateAbstract links and validates an abstract-relation definition.
func ValidateAbstract(c *Collection) (*Link, error) {
	return validate(c, Abstract)
}

// ValidateSentence links and validates a Boolean sentence.
func ValidateSentence(s *Sentence) (*Link, error) {
	link, err := LinkSentence(s)
	if err != nil {
		return link, err
	}
	v := &validator{link: link}
	v.formula(s.Body, nil, 0)
	if len(v.errs) > 0 {
		return link, fmt.Errorf("validate: %s", joinErrs(v.errs))
	}
	return link, nil
}

func validate(c *Collection, mode Mode) (*Link, error) {
	link, err := LinkCollection(c)
	if err != nil {
		return link, err
	}
	v := &validator{link: link, mode: mode}
	v.collection(c, true)
	if len(v.errs) > 0 {
		return link, fmt.Errorf("validate: %s", joinErrs(v.errs))
	}
	return link, nil
}

type validator struct {
	link *Link
	mode Mode
	errs []string
}

func (v *validator) errorf(format string, args ...any) {
	v.errs = append(v.errs, fmt.Sprintf(format, args...))
}

func (v *validator) collection(c *Collection, top bool) {
	// Head-assignment coverage: every head attribute must be assigned in
	// every top-level disjunct (Section 2.1: heads are kept clean and
	// receive values only via assignment predicates).
	if v.mode == Strict {
		branches := orBranches(c.Body)
		for _, br := range branches {
			assigned := map[string]bool{}
			v.collectAssigned(br, c, assigned)
			for _, a := range c.Head.Attrs {
				if !assigned[a] {
					v.errorf("head attribute %s.%s is never assigned in a disjunct of %s",
						c.Head.Rel, a, c.Head.String())
				}
			}
		}
		// Clean head: head references appear only as the head side of
		// assignment predicates.
		v.checkCleanHead(c)
	}
	if v.link.RecursiveCols[c] {
		v.checkRecursion(c)
	}
	v.formula(c.Body, c, 0)
}

// orBranches splits a body into its top-level disjuncts.
func orBranches(f Formula) []Formula {
	if o, ok := f.(*Or); ok {
		var out []Formula
		for _, k := range o.Kids {
			out = append(out, orBranches(k)...)
		}
		return out
	}
	return []Formula{f}
}

// collectAssigned gathers head attributes of c assigned on the generating
// spine of f (descending through quantifier bodies and conjunctions, not
// through negation or nested collections).
func (v *validator) collectAssigned(f Formula, c *Collection, out map[string]bool) {
	switch x := f.(type) {
	case *And:
		for _, k := range x.Kids {
			v.collectAssigned(k, c, out)
		}
	case *Quantifier:
		v.collectAssigned(x.Body, c, out)
	case *Pred:
		if v.link.Preds[x] == PredAssignment {
			side := x.Left
			if v.link.HeadSide[x] == 1 {
				side = x.Right
			}
			if r, ok := side.(*AttrRef); ok {
				if ref := v.link.Refs[r]; ref.Kind == RefHead && ref.Col == c {
					out[r.Attr] = true
				}
			}
		}
	}
}

func (v *validator) checkCleanHead(c *Collection) {
	var check func(f Formula)
	check = func(f Formula) {
		switch x := f.(type) {
		case *And:
			for _, k := range x.Kids {
				check(k)
			}
		case *Or:
			for _, k := range x.Kids {
				check(k)
			}
		case *Not:
			check(x.Kid)
		case *Quantifier:
			// Do not descend into nested collections: their own heads
			// are validated separately and outer head refs inside them
			// would have linked to this collection only via name capture,
			// which resolve() prevents for bound vars.
			check(x.Body)
		case *IsNull:
			for _, r := range TermAttrRefs(x.Arg, nil) {
				if ref := v.link.Refs[r]; ref.Kind == RefHead && ref.Col == c {
					v.errorf("head reference %s may not appear in an IS NULL predicate", r)
				}
			}
		case *Pred:
			kind := v.link.Preds[x]
			for si, side := range []Term{x.Left, x.Right} {
				for _, r := range TermAttrRefs(side, nil) {
					ref := v.link.Refs[r]
					if ref.Kind != RefHead || ref.Col != c {
						continue
					}
					if kind != PredAssignment {
						v.errorf("head reference %s used in a comparison predicate %q; heads must stay clean", r, x)
						continue
					}
					if v.link.HeadSide[x] != si {
						v.errorf("head reference %s appears on the non-head side of assignment %q", r, x)
						continue
					}
					if _, bare := side.(*AttrRef); !bare {
						v.errorf("head reference %s must be a bare attribute on its side of %q", r, x)
					}
				}
			}
		}
	}
	check(c.Body)
}

func (v *validator) checkRecursion(c *Collection) {
	// Recursive definitions follow Datalog LFP semantics (Section 2.9):
	// the recursive reference must not occur under negation, and the
	// defining collection must not aggregate (no grouping operators).
	var walk func(f Formula, negDepth int)
	walk = func(f Formula, negDepth int) {
		switch x := f.(type) {
		case *And:
			for _, k := range x.Kids {
				walk(k, negDepth)
			}
		case *Or:
			for _, k := range x.Kids {
				walk(k, negDepth)
			}
		case *Not:
			walk(x.Kid, negDepth+1)
		case *Quantifier:
			if x.Grouping != nil {
				v.errorf("recursive collection %s may not contain grouping scopes", c.Head.Rel)
			}
			for _, b := range x.Bindings {
				if v.link.RecursiveBindings[b] == c && negDepth > 0 {
					v.errorf("recursive reference %s ∈ %s occurs under negation (unstratified)", b.Var, b.Rel)
				}
				if b.Sub != nil {
					walk(b.Sub.Body, negDepth)
				}
			}
			walk(x.Body, negDepth)
		}
	}
	walk(c.Body, 0)
}

func (v *validator) formula(f Formula, col *Collection, depth int) {
	switch x := f.(type) {
	case nil:
	case *And:
		for _, k := range x.Kids {
			v.formula(k, col, depth)
		}
	case *Or:
		for _, k := range x.Kids {
			v.formula(k, col, depth)
		}
	case *Not:
		v.formula(x.Kid, col, depth)
	case *Pred:
		v.checkAggPlacement(x, nil)
	case *Quantifier:
		v.quantifier(x, col, depth)
	}
}

func (v *validator) quantifier(q *Quantifier, col *Collection, depth int) {
	if len(q.Bindings) == 0 {
		v.errorf("quantifier with no bindings")
	}
	// Grouping keys must be bound by this very quantifier.
	if q.Grouping != nil {
		for _, k := range q.Grouping.Keys {
			ref, ok := v.link.Refs[k]
			if !ok || ref.Kind != RefBinding {
				v.errorf("grouping key %s does not reference a range variable", k)
				continue
			}
			if v.link.BindingQuantifier[ref.Binding] != q {
				v.errorf("grouping key %s must be bound in the same quantifier as γ", k)
			}
		}
	}
	// Aggregation predicates require a grouping operator on this scope
	// (Section 2.5: "the appearance of any aggregation predicate turns an
	// existential scope into a grouping scope and requires a grouping
	// operator").
	spinePreds := spinePredicates(q.Body)
	hasAgg := false
	for _, p := range spinePreds {
		if predContainsAgg(p) {
			hasAgg = true
		}
	}
	if hasAgg && q.Grouping == nil {
		v.errorf("aggregation predicate in scope %s requires a grouping operator γ", shortQuant(q))
	}
	if q.Grouping != nil {
		v.checkGroupInvariance(q, spinePreds)
	}
	// Aggregates are only legal directly on the spine of a grouping
	// scope; find any that sit deeper (under Or/Not inside this body,
	// before the next quantifier).
	v.checkDeepAggs(q.Body, true)
	// Validate nested collection sources as strict queries sharing this
	// link (their internal rules were linked already; check their heads).
	for _, b := range q.Bindings {
		if b.Sub != nil {
			v.collection(b.Sub, false)
		}
	}
	v.formula(q.Body, col, depth+1)
}

// spinePredicates returns the Pred nodes on the conjunctive spine of a
// quantifier body.
func spinePredicates(f Formula) []*Pred {
	var out []*Pred
	for _, s := range Spine(f) {
		if p, ok := s.(*Pred); ok {
			out = append(out, p)
		}
	}
	return out
}

func predContainsAgg(p *Pred) bool {
	return ContainsAgg(p.Left) || ContainsAgg(p.Right)
}

// checkDeepAggs flags aggregates that are not directly on a quantifier
// spine. onSpine is true while we are still on the conjunctive spine of
// the current quantifier body.
func (v *validator) checkDeepAggs(f Formula, onSpine bool) {
	switch x := f.(type) {
	case *And:
		for _, k := range x.Kids {
			v.checkDeepAggs(k, onSpine)
		}
	case *Or:
		for _, k := range x.Kids {
			v.checkDeepAggs(k, false)
		}
	case *Not:
		v.checkDeepAggs(x.Kid, false)
	case *Pred:
		if !onSpine && predContainsAgg(x) {
			v.errorf("aggregate in %q must appear directly in a grouping scope, not under ∨/¬", x)
		}
		v.checkAggPlacement(x, nil)
	case *Quantifier:
		// A nested quantifier starts its own spine; recursion handles it.
	}
}

// checkAggPlacement rejects nested aggregates.
func (v *validator) checkAggPlacement(p *Pred, _ any) {
	var walk func(t Term, inAgg bool)
	walk = func(t Term, inAgg bool) {
		switch x := t.(type) {
		case *Agg:
			if inAgg {
				v.errorf("nested aggregate in %q", p)
			}
			walk(x.Arg, true)
		case *Arith:
			walk(x.L, inAgg)
			walk(x.R, inAgg)
		}
	}
	walk(p.Left, false)
	walk(p.Right, false)
}

// checkGroupInvariance enforces that, in a grouping scope, the non-
// aggregate parts of assignment and aggregation predicates reference only
// group-invariant values: grouping keys, variables bound outside this
// quantifier, or head attributes.
func (v *validator) checkGroupInvariance(q *Quantifier, spine []*Pred) {
	keys := map[string]bool{}
	for _, k := range q.Grouping.Keys {
		keys[k.Var+"."+k.Attr] = true
	}
	isLocal := func(r *AttrRef) bool {
		ref, ok := v.link.Refs[r]
		if !ok || ref.Kind != RefBinding {
			return false // head refs and unresolved are not local bindings
		}
		return v.link.BindingQuantifier[ref.Binding] == q
	}
	for _, p := range spine {
		isAssign := v.link.Preds[p] == PredAssignment
		if !isAssign && !predContainsAgg(p) {
			continue // plain comparisons are WHERE-stage, any refs allowed
		}
		check := func(t Term) {
			var walk func(Term, bool)
			walk = func(t Term, inAgg bool) {
				switch x := t.(type) {
				case *Agg:
					walk(x.Arg, true)
				case *Arith:
					walk(x.L, inAgg)
					walk(x.R, inAgg)
				case *AttrRef:
					if inAgg {
						return // aggregate arguments range over the group
					}
					if ref := v.link.Refs[x]; ref.Kind == RefHead {
						return
					}
					if keys[x.Var+"."+x.Attr] {
						return
					}
					if isLocal(x) {
						v.errorf("%s in %q is not group-invariant (not a grouping key of γ)", x, p)
					}
				}
			}
			walk(t, false)
		}
		check(p.Left)
		check(p.Right)
	}
}

func shortQuant(q *Quantifier) string {
	if len(q.Bindings) == 0 {
		return "∃[]"
	}
	return "∃" + q.Bindings[0].String() + ",…"
}

package alt

import "strings"

// Head is the output declaration of a collection: a relation name and its
// attribute list. Heads are "clean" (Section 2.1): body variables never
// appear here; head attributes receive values only through assignment
// predicates in the body.
type Head struct {
	Rel   string
	Attrs []string
}

// String renders "Q(A,B)".
func (h Head) String() string { return h.Rel + "(" + strings.Join(h.Attrs, ",") + ")" }

// HasAttr reports whether the head declares the attribute.
func (h Head) HasAttr(a string) bool {
	for _, x := range h.Attrs {
		if x == a {
			return true
		}
	}
	return false
}

// Collection is an ARC comprehension: {Head | Body}. A collection is the
// unit of definition — queries, views/CTEs, abstract relations, and
// recursive definitions (Section 2.9, Section 2.13) are all collections.
type Collection struct {
	Head Head
	Body Formula
}

// String renders the comprehension in ARC surface syntax,
// "{Q(A) | ∃r ∈ R [Q.A = r.A]}".
func (c *Collection) String() string {
	body := ""
	if c.Body != nil {
		body = c.Body.String()
	}
	return "{" + c.Head.String() + " | " + body + "}"
}

// Sentence is a closed Boolean ARC statement (Section 2.5, queries (13)
// and (14)): a formula with no head, evaluating to true or false — used
// for logical sentences and integrity constraints.
type Sentence struct {
	Body Formula
}

// String renders the bare formula.
func (s *Sentence) String() string {
	if s.Body == nil {
		return ""
	}
	return s.Body.String()
}

// Walk invokes fn on every formula node of f in pre-order, descending
// into quantifier bodies and nested collections. It is the traversal
// primitive shared by the linker, validators, pattern analysis, and
// renderers.
func Walk(f Formula, fn func(Formula)) {
	if f == nil {
		return
	}
	fn(f)
	switch x := f.(type) {
	case *And:
		for _, k := range x.Kids {
			Walk(k, fn)
		}
	case *Or:
		for _, k := range x.Kids {
			Walk(k, fn)
		}
	case *Not:
		Walk(x.Kid, fn)
	case *Quantifier:
		for _, b := range x.Bindings {
			if b.Sub != nil {
				Walk(b.Sub.Body, fn)
			}
		}
		Walk(x.Body, fn)
	}
}

// Spine flattens nested And nodes into the conjunctive spine of a
// quantifier body: the list of direct conjuncts, in order.
func Spine(f Formula) []Formula {
	if f == nil {
		return nil
	}
	if a, ok := f.(*And); ok {
		var out []Formula
		for _, k := range a.Kids {
			out = append(out, Spine(k)...)
		}
		return out
	}
	return []Formula{f}
}

// FormulaAttrRefs appends every attribute reference that occurs directly
// in f (without descending into nested quantifiers or collections) to dst.
// Used for predicate-to-join assignment and group-invariance checks.
func FormulaAttrRefs(f Formula, dst []*AttrRef) []*AttrRef {
	switch x := f.(type) {
	case *Pred:
		dst = TermAttrRefs(x.Left, dst)
		dst = TermAttrRefs(x.Right, dst)
	case *IsNull:
		dst = TermAttrRefs(x.Arg, dst)
	case *And:
		for _, k := range x.Kids {
			dst = FormulaAttrRefs(k, dst)
		}
	case *Or:
		for _, k := range x.Kids {
			dst = FormulaAttrRefs(k, dst)
		}
	case *Not:
		dst = FormulaAttrRefs(x.Kid, dst)
	}
	return dst
}

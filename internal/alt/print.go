package alt

import (
	"strings"
)

// PrintTree renders a collection as the paper's ALT modality (Fig 2a):
// an indented box-drawing tree with COLLECTION / HEAD / QUANTIFIER /
// BINDING / GROUPING / JOIN / AND / OR / NOT / PREDICATE nodes.
func PrintTree(c *Collection) string {
	n := collectionNode(c)
	var b strings.Builder
	render(&b, n, "", true, true)
	return b.String()
}

// PrintSentenceTree renders a Boolean sentence as an ALT.
func PrintSentenceTree(s *Sentence) string {
	n := &tnode{label: "SENTENCE", kids: []*tnode{formulaNode(s.Body)}}
	var b strings.Builder
	render(&b, n, "", true, true)
	return b.String()
}

type tnode struct {
	label string
	kids  []*tnode
}

func collectionNode(c *Collection) *tnode {
	n := &tnode{label: "COLLECTION"}
	n.kids = append(n.kids, &tnode{label: "HEAD: " + c.Head.String()})
	if c.Body != nil {
		n.kids = append(n.kids, formulaNode(c.Body))
	}
	return n
}

func formulaNode(f Formula) *tnode {
	switch x := f.(type) {
	case *And:
		n := &tnode{label: "AND ∧"}
		for _, k := range x.Kids {
			n.kids = append(n.kids, formulaNode(k))
		}
		return n
	case *Or:
		n := &tnode{label: "OR ∨"}
		for _, k := range x.Kids {
			n.kids = append(n.kids, formulaNode(k))
		}
		return n
	case *Not:
		return &tnode{label: "NOT ¬", kids: []*tnode{formulaNode(x.Kid)}}
	case *Pred:
		return &tnode{label: "PREDICATE: " + x.String()}
	case *IsNull:
		return &tnode{label: "PREDICATE: " + x.String()}
	case *Quantifier:
		n := &tnode{label: "QUANTIFIER ∃"}
		for _, b := range x.Bindings {
			if b.Sub != nil {
				bn := &tnode{label: "BINDING: " + b.Var + " ∈ "}
				bn.kids = append(bn.kids, collectionNode(b.Sub))
				n.kids = append(n.kids, bn)
			} else {
				n.kids = append(n.kids, &tnode{label: "BINDING: " + b.Var + " ∈ " + b.Rel})
			}
		}
		if x.Grouping != nil {
			if len(x.Grouping.Keys) == 0 {
				n.kids = append(n.kids, &tnode{label: "GROUPING: ∅"})
			} else {
				parts := make([]string, len(x.Grouping.Keys))
				for i, k := range x.Grouping.Keys {
					parts[i] = k.String()
				}
				n.kids = append(n.kids, &tnode{label: "GROUPING: " + strings.Join(parts, ", ")})
			}
		}
		if x.Join != nil {
			n.kids = append(n.kids, &tnode{label: "JOIN: " + x.Join.String()})
		}
		if x.Body != nil {
			n.kids = append(n.kids, formulaNode(x.Body))
		}
		return n
	}
	return &tnode{label: "?"}
}

func render(b *strings.Builder, n *tnode, prefix string, isLast, isRoot bool) {
	if isRoot {
		b.WriteString(n.label)
		b.WriteString("\n")
	} else {
		b.WriteString(prefix)
		if isLast {
			b.WriteString("└─ ")
		} else {
			b.WriteString("├─ ")
		}
		b.WriteString(n.label)
		b.WriteString("\n")
	}
	childPrefix := prefix
	if !isRoot {
		if isLast {
			childPrefix += "   "
		} else {
			childPrefix += "│  "
		}
	}
	for i, k := range n.kids {
		render(b, k, childPrefix, i == len(n.kids)-1, false)
	}
}

// NodeCount returns the number of ALT nodes in a collection — one of the
// modality complexity metrics of experiment E21.
func NodeCount(c *Collection) int {
	return nodeCountTree(collectionNode(c))
}

func nodeCountTree(n *tnode) int {
	total := 1
	for _, k := range n.kids {
		total += nodeCountTree(k)
	}
	return total
}

// Package alt implements the Abstract Language Tree (ALT), the paper's
// machine-facing modality (Section 2.2, Fig 2a): a hierarchical
// representation of the *semantics* of a relational query — collections
// with clean heads, explicit quantifier scopes, bindings, grouping
// operators, join annotations, and assignment vs comparison predicates.
// After linking (name resolution), the tree carries the cross-references
// that make it an Abstract Language Higraph (ALH).
package alt

import (
	"fmt"
	"strings"

	"repro/internal/value"
)

// Term is the value-level expression vocabulary: attribute references,
// constants, arithmetic, and aggregate applications.
type Term interface {
	isTerm()
	// String renders the term in ARC comprehension surface syntax.
	String() string
}

// AttrRef is a named-perspective attribute access "var.Attr". Var may name
// a range variable bound in an enclosing scope or the head relation of the
// nearest enclosing collection (an assignment target); linking decides
// which.
type AttrRef struct {
	Var  string
	Attr string
}

func (*AttrRef) isTerm() {}

// String renders "var.attr".
func (a *AttrRef) String() string { return a.Var + "." + a.Attr }

// Const is a literal value.
type Const struct {
	Val value.Value
}

func (*Const) isTerm() {}

// String renders the literal.
func (c *Const) String() string { return c.Val.String() }

// AggFunc enumerates the aggregate functions of Section 2.5.
type AggFunc int

const (
	// AggSum is sum(·).
	AggSum AggFunc = iota
	// AggCount is count(·), counting non-null inputs.
	AggCount
	// AggCountDistinct is countdistinct(·), the dedicated deduplicating
	// aggregate the paper mentions as the alternative to projection.
	AggCountDistinct
	// AggAvg is avg(·).
	AggAvg
	// AggMin is min(·).
	AggMin
	// AggMax is max(·).
	AggMax
)

// String returns the surface name of the aggregate.
func (f AggFunc) String() string {
	switch f {
	case AggSum:
		return "sum"
	case AggCount:
		return "count"
	case AggCountDistinct:
		return "countdistinct"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	}
	return "agg?"
}

// AggFuncByName resolves a surface name to an AggFunc.
func AggFuncByName(name string) (AggFunc, bool) {
	switch strings.ToLower(name) {
	case "sum":
		return AggSum, true
	case "count":
		return AggCount, true
	case "countdistinct", "count_distinct":
		return AggCountDistinct, true
	case "avg", "average":
		return AggAvg, true
	case "min":
		return AggMin, true
	case "max":
		return AggMax, true
	}
	return 0, false
}

// Agg applies an aggregate function over the tuples of the enclosing
// grouping scope; the argument is evaluated per tuple (it may be an
// arithmetic expression, as in sum(a.val * b.val) of query (26)).
type Agg struct {
	Func AggFunc
	Arg  Term
}

func (*Agg) isTerm() {}

// String renders "func(arg)".
func (a *Agg) String() string { return a.Func.String() + "(" + a.Arg.String() + ")" }

// ArithOp enumerates binary arithmetic operators.
type ArithOp int

const (
	// OpAdd is +.
	OpAdd ArithOp = iota
	// OpSub is -.
	OpSub
	// OpMul is *.
	OpMul
	// OpDiv is /.
	OpDiv
)

// String renders the operator symbol.
func (op ArithOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	}
	return "?"
}

// Arith is a binary arithmetic expression.
type Arith struct {
	Op   ArithOp
	L, R Term
}

func (*Arith) isTerm() {}

// String renders "(l op r)".
func (a *Arith) String() string {
	return "(" + a.L.String() + " " + a.Op.String() + " " + a.R.String() + ")"
}

// ContainsAgg reports whether t contains an aggregate application.
func ContainsAgg(t Term) bool {
	switch x := t.(type) {
	case *Agg:
		return true
	case *Arith:
		return ContainsAgg(x.L) || ContainsAgg(x.R)
	}
	return false
}

// TermAttrRefs appends every attribute reference in t to dst.
func TermAttrRefs(t Term, dst []*AttrRef) []*AttrRef {
	switch x := t.(type) {
	case *AttrRef:
		dst = append(dst, x)
	case *Arith:
		dst = TermAttrRefs(x.L, dst)
		dst = TermAttrRefs(x.R, dst)
	case *Agg:
		dst = TermAttrRefs(x.Arg, dst)
	}
	return dst
}

// fmt assertion helpers (keep the linter honest about unused imports).
var _ = fmt.Sprintf

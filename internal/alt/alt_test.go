package alt

import (
	"strings"
	"testing"

	"repro/internal/value"
)

// q1 is paper query (1):
// {Q(A) | ∃r∈R, s∈S [Q.A = r.A ∧ r.B = s.B ∧ s.C = 0]}
func q1() *Collection {
	return Col("Q", []string{"A"},
		Exists([]*Binding{Bind("r", "R"), Bind("s", "S")},
			AndF(
				Eq(Ref("Q", "A"), Ref("r", "A")),
				Eq(Ref("r", "B"), Ref("s", "B")),
				Eq(Ref("s", "C"), CInt(0)),
			)))
}

// q3 is paper query (3): grouped aggregate, FIO pattern.
func q3() *Collection {
	return Col("Q", []string{"A", "sm"},
		ExistsG([]*Binding{Bind("r", "R")},
			[]*AttrRef{Ref("r", "A")},
			AndF(
				Eq(Ref("Q", "A"), Ref("r", "A")),
				Eq(Ref("Q", "sm"), Sum(Ref("r", "B"))),
			)))
}

// q16 is paper query (16): recursive ancestor.
func q16() *Collection {
	return Col("A", []string{"s", "t"},
		OrF(
			Exists([]*Binding{Bind("p", "P")},
				AndF(
					Eq(Ref("A", "s"), Ref("p", "s")),
					Eq(Ref("A", "t"), Ref("p", "t")),
				)),
			Exists([]*Binding{Bind("p", "P"), Bind("a2", "A")},
				AndF(
					Eq(Ref("A", "s"), Ref("p", "s")),
					Eq(Ref("p", "t"), Ref("a2", "s")),
					Eq(Ref("A", "t"), Ref("a2", "t")),
				)),
		))
}

// q7 is paper query (7): FOI pattern with a nested lateral collection.
func q7() *Collection {
	inner := Col("X", []string{"sm"},
		ExistsG([]*Binding{Bind("r2", "R")}, nil,
			AndF(
				Eq(Ref("r2", "A"), Ref("r", "A")),
				Eq(Ref("X", "sm"), Sum(Ref("r2", "B"))),
			)))
	return Col("Q", []string{"A", "sm"},
		Exists([]*Binding{Bind("r", "R"), BindSub("x", inner)},
			AndF(
				Eq(Ref("Q", "A"), Ref("r", "A")),
				Eq(Ref("Q", "sm"), Ref("x", "sm")),
			)))
}

func TestLinkQ1(t *testing.T) {
	c := q1()
	link, err := LinkCollection(c)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	spine := Spine(c.Body.(*Quantifier).Body)
	if len(spine) != 3 {
		t.Fatalf("spine has %d conjuncts", len(spine))
	}
	p0 := spine[0].(*Pred)
	if link.Preds[p0] != PredAssignment || link.HeadSide[p0] != 0 {
		t.Errorf("Q.A = r.A should be an assignment with head on the left")
	}
	p1 := spine[1].(*Pred)
	if link.Preds[p1] != PredComparison {
		t.Errorf("r.B = s.B should be a comparison")
	}
	// Ref resolution: r.A resolves to binding r.
	rA := p0.Right.(*AttrRef)
	ref := link.Refs[rA]
	if ref.Kind != RefBinding || ref.Binding.Var != "r" {
		t.Errorf("r.A resolved to %+v", ref)
	}
	qA := p0.Left.(*AttrRef)
	if link.Refs[qA].Kind != RefHead {
		t.Errorf("Q.A should resolve to the head")
	}
}

func TestLinkRecursion(t *testing.T) {
	c := q16()
	link, err := LinkCollection(c)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	if !link.RecursiveCols[c] {
		t.Fatal("q16 must be marked recursive")
	}
	found := false
	for b, col := range link.RecursiveBindings {
		if b.Var == "a2" && col == c {
			found = true
		}
	}
	if !found {
		t.Fatal("binding a2 ∈ A must be marked as the recursive reference")
	}
}

func TestLinkCorrelation(t *testing.T) {
	c := q7()
	link, err := LinkCollection(c)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	inner := c.Body.(*Quantifier).Bindings[1].Sub
	vars := link.Correlated[inner]
	if len(vars) != 1 || vars[0] != "r" {
		t.Fatalf("inner collection correlation = %v, want [r]", vars)
	}
}

func TestLinkErrors(t *testing.T) {
	cases := []struct {
		name string
		col  *Collection
		want string
	}{
		{
			"unbound variable",
			Col("Q", []string{"A"},
				Exists([]*Binding{Bind("r", "R")},
					Eq(Ref("Q", "A"), Ref("zz", "A")))),
			"unbound variable",
		},
		{
			"duplicate binding",
			Col("Q", []string{"A"},
				Exists([]*Binding{Bind("r", "R"), Bind("r", "S")},
					Eq(Ref("Q", "A"), Ref("r", "A")))),
			"duplicate binding",
		},
		{
			"empty binding",
			Col("Q", []string{"A"},
				Exists([]*Binding{{Var: "r"}},
					Eq(Ref("Q", "A"), Ref("r", "A")))),
			"neither a relation nor a collection",
		},
		{
			"bad head attribute",
			Col("Q", []string{"A"},
				Exists([]*Binding{Bind("r", "R")},
					AndF(Eq(Ref("Q", "A"), Ref("r", "A")), Eq(Ref("Q", "B"), Ref("r", "B"))))),
			"no attribute",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := LinkCollection(c.col)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("got %v, want error containing %q", err, c.want)
			}
		})
	}
}

func TestValidateAcceptsPaperQueries(t *testing.T) {
	for name, c := range map[string]*Collection{
		"q1": q1(), "q3": q3(), "q7": q7(), "q16": q16(),
	} {
		if _, err := ValidateCollection(c); err != nil {
			t.Errorf("%s should validate: %v", name, err)
		}
	}
}

func TestValidateRejectsAggWithoutGrouping(t *testing.T) {
	c := Col("Q", []string{"A", "sm"},
		Exists([]*Binding{Bind("r", "R")},
			AndF(
				Eq(Ref("Q", "A"), Ref("r", "A")),
				Eq(Ref("Q", "sm"), Sum(Ref("r", "B"))),
			)))
	_, err := ValidateCollection(c)
	if err == nil || !strings.Contains(err.Error(), "grouping operator") {
		t.Fatalf("want grouping-operator error, got %v", err)
	}
}

func TestValidateRejectsUnassignedHead(t *testing.T) {
	c := Col("Q", []string{"A", "B"},
		Exists([]*Binding{Bind("r", "R")},
			Eq(Ref("Q", "A"), Ref("r", "A"))))
	_, err := ValidateCollection(c)
	if err == nil || !strings.Contains(err.Error(), "never assigned") {
		t.Fatalf("want never-assigned error, got %v", err)
	}
}

func TestValidateRejectsDirtyHead(t *testing.T) {
	// Head attribute used in a comparison — violates the clean-head rule
	// for strict queries (but is allowed for abstract relations).
	c := Col("Q", []string{"A"},
		Exists([]*Binding{Bind("r", "R")},
			AndF(
				Eq(Ref("Q", "A"), Ref("r", "A")),
				Lt(Ref("Q", "A"), CInt(5)),
			)))
	_, err := ValidateCollection(c)
	if err == nil || !strings.Contains(err.Error(), "clean") {
		t.Fatalf("want clean-head error, got %v", err)
	}
	if _, err := ValidateAbstract(c); err != nil {
		t.Fatalf("abstract mode should accept head-as-parameter: %v", err)
	}
}

func TestValidateRejectsGroupingKeyOutsideQuantifier(t *testing.T) {
	// γ over a variable bound in the outer scope.
	inner := Col("X", []string{"sm"},
		ExistsG([]*Binding{Bind("s", "S")},
			[]*AttrRef{Ref("r", "A")}, // r is outer — illegal grouping key
			Eq(Ref("X", "sm"), Sum(Ref("s", "B")))))
	c := Col("Q", []string{"sm"},
		Exists([]*Binding{Bind("r", "R"), BindSub("x", inner)},
			Eq(Ref("Q", "sm"), Ref("x", "sm"))))
	_, err := ValidateCollection(c)
	if err == nil || !strings.Contains(err.Error(), "same quantifier") {
		t.Fatalf("want same-quantifier error, got %v", err)
	}
}

func TestValidateRejectsNonInvariantAssignment(t *testing.T) {
	// Q.B = r.B in a scope grouped by r.A: r.B is not group-invariant.
	c := Col("Q", []string{"A", "B"},
		ExistsG([]*Binding{Bind("r", "R")},
			[]*AttrRef{Ref("r", "A")},
			AndF(
				Eq(Ref("Q", "A"), Ref("r", "A")),
				Eq(Ref("Q", "B"), Ref("r", "B")),
			)))
	_, err := ValidateCollection(c)
	if err == nil || !strings.Contains(err.Error(), "group-invariant") {
		t.Fatalf("want group-invariance error, got %v", err)
	}
}

func TestValidateRejectsUnstratifiedRecursion(t *testing.T) {
	c := Col("A", []string{"s"},
		Exists([]*Binding{Bind("p", "P")},
			AndF(
				Eq(Ref("A", "s"), Ref("p", "s")),
				NotF(Exists([]*Binding{Bind("a2", "A")},
					Eq(Ref("a2", "s"), Ref("p", "t")))),
			)))
	_, err := ValidateCollection(c)
	if err == nil || !strings.Contains(err.Error(), "unstratified") {
		t.Fatalf("want unstratified error, got %v", err)
	}
}

func TestValidateRejectsNestedAggregate(t *testing.T) {
	c := Col("Q", []string{"x"},
		ExistsG([]*Binding{Bind("r", "R")}, nil,
			Eq(Ref("Q", "x"), Sum(&Arith{Op: OpAdd, L: Sum(Ref("r", "B")), R: CInt(1)}))))
	_, err := ValidateCollection(c)
	if err == nil || !strings.Contains(err.Error(), "nested aggregate") {
		t.Fatalf("want nested-aggregate error, got %v", err)
	}
}

func TestValidateSentence(t *testing.T) {
	// (13): ∃r∈R[∃s∈S, γ∅ [r.id=s.id ∧ r.q <= count(s.d)]]
	s := &Sentence{Body: Exists([]*Binding{Bind("r", "R")},
		ExistsG([]*Binding{Bind("s", "S")}, nil,
			AndF(
				Eq(Ref("r", "id"), Ref("s", "id")),
				Le(Ref("r", "q"), Count(Ref("s", "d"))),
			)))}
	if _, err := ValidateSentence(s); err != nil {
		t.Fatalf("sentence (13) should validate: %v", err)
	}
}

func TestJoinAnnotationLinking(t *testing.T) {
	// (18): ∃r∈R, s∈S, left(r, inner(11 AS c, s)) [... r.h = c.val ...]
	c := Col("Q", []string{"m", "n"},
		ExistsJ([]*Binding{Bind("r", "R"), Bind("s", "S")},
			LeftJ(JV("r"), Inner(JC(value.Int(11), "c"), JV("s"))),
			AndF(
				Eq(Ref("Q", "m"), Ref("r", "m")),
				Eq(Ref("Q", "n"), Ref("s", "n")),
				Eq(Ref("r", "y"), Ref("s", "y")),
				Eq(Ref("r", "h"), Ref("c", "val")),
			)))
	link, err := ValidateCollection(c)
	if err != nil {
		t.Fatalf("join-annotated query should validate: %v", err)
	}
	if len(link.ConstBindings) != 1 {
		t.Fatalf("expected 1 synthetic constant binding, got %d", len(link.ConstBindings))
	}
}

func TestJoinAnnotationErrors(t *testing.T) {
	mk := func(j JoinExpr) *Collection {
		return Col("Q", []string{"m"},
			ExistsJ([]*Binding{Bind("r", "R"), Bind("s", "S")}, j,
				Eq(Ref("Q", "m"), Ref("r", "m"))))
	}
	if _, err := LinkCollection(mk(LeftJ(JV("r"), JV("zz")))); err == nil ||
		!strings.Contains(err.Error(), "not bound") {
		t.Errorf("unknown join var: %v", err)
	}
	if _, err := LinkCollection(mk(Inner(JV("r"), JV("r")))); err == nil ||
		!strings.Contains(err.Error(), "twice") {
		t.Errorf("duplicate join var: %v", err)
	}
	if _, err := LinkCollection(mk(&JoinOp{Kind: JoinLeft, Kids: []JoinExpr{JV("r")}})); err == nil ||
		!strings.Contains(err.Error(), "binary") {
		t.Errorf("unary left join: %v", err)
	}
}

func TestPrintTreeMatchesPaperShape(t *testing.T) {
	got := PrintTree(q1())
	for _, want := range []string{
		"COLLECTION",
		"HEAD: Q(A)",
		"QUANTIFIER ∃",
		"BINDING: r ∈ R",
		"BINDING: s ∈ S",
		"AND ∧",
		"PREDICATE: Q.A = r.A",
		"PREDICATE: s.C = 0",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("tree missing %q:\n%s", want, got)
		}
	}
}

func TestPrintTreeGroupingAndNesting(t *testing.T) {
	got := PrintTree(q7())
	for _, want := range []string{"GROUPING: ∅", "HEAD: X(sm)", "BINDING: x ∈"} {
		if !strings.Contains(got, want) {
			t.Errorf("tree missing %q:\n%s", want, got)
		}
	}
	got3 := PrintTree(q3())
	if !strings.Contains(got3, "GROUPING: r.A") {
		t.Errorf("keyed grouping missing:\n%s", got3)
	}
}

func TestSurfaceStrings(t *testing.T) {
	s := q3().String()
	for _, want := range []string{"{Q(A,sm)", "∃r ∈ R", "γ r.A", "sum(r.B)"} {
		if !strings.Contains(s, want) {
			t.Errorf("surface syntax missing %q in %s", want, s)
		}
	}
	if q16().String() == "" {
		t.Error("recursive query renders empty")
	}
	j := LeftJ(JV("r"), Inner(JC(value.Int(11), "c"), JV("s")))
	if j.String() != "left(r, inner(11 AS c, s))" {
		t.Errorf("join annotation renders %q", j.String())
	}
}

func TestNodeCount(t *testing.T) {
	if n1, n7 := NodeCount(q1()), NodeCount(q7()); n1 <= 0 || n7 <= n1 {
		t.Errorf("NodeCount: q1=%d q7=%d (nested should be larger)", n1, n7)
	}
}

func TestSpineAndWalk(t *testing.T) {
	c := q1()
	count := 0
	Walk(c.Body, func(Formula) { count++ })
	// Quantifier + And + 3 preds = 5.
	if count != 5 {
		t.Errorf("Walk visited %d nodes, want 5", count)
	}
	if got := len(Spine(AndF(Eq(CInt(1), CInt(1)), AndF(Eq(CInt(2), CInt(2)), Eq(CInt(3), CInt(3)))))); got != 3 {
		t.Errorf("Spine flattening = %d, want 3", got)
	}
}

package alt

// CloneCollection returns a deep copy of a collection; mutation-based
// validation studies (experiment E20) and rewriters use it so the
// original ALT stays untouched.
func CloneCollection(c *Collection) *Collection {
	if c == nil {
		return nil
	}
	return &Collection{
		Head: Head{Rel: c.Head.Rel, Attrs: append([]string{}, c.Head.Attrs...)},
		Body: CloneFormula(c.Body),
	}
}

// CloneFormula deep-copies a formula.
func CloneFormula(f Formula) Formula {
	switch x := f.(type) {
	case nil:
		return nil
	case *And:
		kids := make([]Formula, len(x.Kids))
		for i, k := range x.Kids {
			kids[i] = CloneFormula(k)
		}
		return &And{Kids: kids}
	case *Or:
		kids := make([]Formula, len(x.Kids))
		for i, k := range x.Kids {
			kids[i] = CloneFormula(k)
		}
		return &Or{Kids: kids}
	case *Not:
		return &Not{Kid: CloneFormula(x.Kid)}
	case *Pred:
		return &Pred{Left: CloneTerm(x.Left), Op: x.Op, Right: CloneTerm(x.Right)}
	case *IsNull:
		return &IsNull{Arg: CloneTerm(x.Arg), Negated: x.Negated}
	case *Quantifier:
		q := &Quantifier{Body: CloneFormula(x.Body)}
		for _, b := range x.Bindings {
			q.Bindings = append(q.Bindings, &Binding{Var: b.Var, Rel: b.Rel, Sub: CloneCollection(b.Sub)})
		}
		if x.Grouping != nil {
			g := &Grouping{}
			for _, k := range x.Grouping.Keys {
				g.Keys = append(g.Keys, &AttrRef{Var: k.Var, Attr: k.Attr})
			}
			q.Grouping = g
		}
		q.Join = cloneJoin(x.Join)
		return q
	}
	panic("CloneFormula: unknown formula type")
}

// CloneTerm deep-copies a term.
func CloneTerm(t Term) Term {
	switch x := t.(type) {
	case nil:
		return nil
	case *AttrRef:
		return &AttrRef{Var: x.Var, Attr: x.Attr}
	case *Const:
		return &Const{Val: x.Val}
	case *Agg:
		return &Agg{Func: x.Func, Arg: CloneTerm(x.Arg)}
	case *Arith:
		return &Arith{Op: x.Op, L: CloneTerm(x.L), R: CloneTerm(x.R)}
	}
	panic("CloneTerm: unknown term type")
}

func cloneJoin(j JoinExpr) JoinExpr {
	switch x := j.(type) {
	case nil:
		return nil
	case *JoinVar:
		return &JoinVar{Var: x.Var}
	case *JoinConst:
		return &JoinConst{Val: x.Val, Var: x.Var}
	case *JoinOp:
		op := &JoinOp{Kind: x.Kind}
		for _, k := range x.Kids {
			op.Kids = append(op.Kids, cloneJoin(k))
		}
		return op
	}
	panic("cloneJoin: unknown join type")
}

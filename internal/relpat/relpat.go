// Package relpat constructs the ALTs that the paper's comparison
// languages compile the running examples to (Sections 2.5 and 3.1):
// the same multiple-aggregate query in the SQL/ARC "from the inside out"
// pattern (query (8)), the Klug/Hella "from the outside in" pattern with
// per-aggregate scopes (query (10)), and the Rel pattern (query (12));
// plus matrix multiplication (queries (25)/(26)) in both the arithmetic
// and the reified-external form. These fixtures power experiments
// E05–E07 and E15 and the pattern-analysis tests.
package relpat

import "repro/internal/alt"

// MultiAggFIO is query (8): both aggregates share one grouping scope, and
// HAVING is a selection after aggregation. Schema: R(empl,dept),
// S(empl,sal); result Q(dept,av).
func MultiAggFIO() *alt.Collection {
	inner := alt.Col("X", []string{"dept", "av", "sm"},
		alt.ExistsG(
			[]*alt.Binding{alt.Bind("r", "R"), alt.Bind("s", "S")},
			[]*alt.AttrRef{alt.Ref("r", "dept")},
			alt.AndF(
				alt.Eq(alt.Ref("r", "empl"), alt.Ref("s", "empl")),
				alt.Eq(alt.Ref("X", "dept"), alt.Ref("r", "dept")),
				alt.Eq(alt.Ref("X", "av"), alt.Avg(alt.Ref("s", "sal"))),
				alt.Eq(alt.Ref("X", "sm"), alt.Sum(alt.Ref("s", "sal"))),
			)))
	return alt.Col("Q", []string{"dept", "av"},
		alt.Exists([]*alt.Binding{alt.BindSub("x", inner)},
			alt.AndF(
				alt.Eq(alt.Ref("Q", "dept"), alt.Ref("x", "dept")),
				alt.Eq(alt.Ref("Q", "av"), alt.Ref("x", "av")),
				alt.Gt(alt.Ref("x", "sm"), alt.CInt(100)),
			)))
}

// MultiAggHella is query (10): the Hella et al. / Klug pattern — the base
// relations are scanned once outside and once per aggregate, each
// aggregate in its own correlated scope grouped by the outer department.
func MultiAggHella() *alt.Collection {
	avgCol := alt.Col("X", []string{"av"},
		alt.ExistsG(
			[]*alt.Binding{alt.Bind("r1", "R"), alt.Bind("s1", "S")},
			[]*alt.AttrRef{alt.Ref("r1", "dept")},
			alt.AndF(
				alt.Eq(alt.Ref("r1", "dept"), alt.Ref("r3", "dept")),
				alt.Eq(alt.Ref("r1", "empl"), alt.Ref("s1", "empl")),
				alt.Eq(alt.Ref("X", "av"), alt.Avg(alt.Ref("s1", "sal"))),
			)))
	sumCol := alt.Col("Y", []string{"sm"},
		alt.ExistsG(
			[]*alt.Binding{alt.Bind("r2", "R"), alt.Bind("s2", "S")},
			[]*alt.AttrRef{alt.Ref("r2", "dept")},
			alt.AndF(
				alt.Eq(alt.Ref("r2", "dept"), alt.Ref("r3", "dept")),
				alt.Eq(alt.Ref("r2", "empl"), alt.Ref("s2", "empl")),
				alt.Eq(alt.Ref("Y", "sm"), alt.Sum(alt.Ref("s2", "sal"))),
			)))
	return alt.Col("Q", []string{"dept", "av"},
		alt.Exists(
			[]*alt.Binding{
				alt.Bind("r3", "R"), alt.Bind("s3", "S"),
				alt.BindSub("x", avgCol), alt.BindSub("y", sumCol),
			},
			alt.AndF(
				alt.Eq(alt.Ref("Q", "dept"), alt.Ref("r3", "dept")),
				alt.Eq(alt.Ref("Q", "av"), alt.Ref("x", "av")),
				alt.Eq(alt.Ref("r3", "empl"), alt.Ref("s3", "empl")),
				alt.Gt(alt.Ref("y", "sm"), alt.CInt(100)),
			)))
}

// MultiAggRel is query (12): the Rel pattern — FIO aggregation but with a
// separate scope (separate subquery) per aggregate, joined on the
// grouping key.
func MultiAggRel() *alt.Collection {
	avgCol := alt.Col("X", []string{"dept", "av"},
		alt.ExistsG(
			[]*alt.Binding{alt.Bind("r1", "R"), alt.Bind("s1", "S")},
			[]*alt.AttrRef{alt.Ref("r1", "dept")},
			alt.AndF(
				alt.Eq(alt.Ref("X", "dept"), alt.Ref("r1", "dept")),
				alt.Eq(alt.Ref("r1", "empl"), alt.Ref("s1", "empl")),
				alt.Eq(alt.Ref("X", "av"), alt.Avg(alt.Ref("s1", "sal"))),
			)))
	sumCol := alt.Col("Y", []string{"dept", "sm"},
		alt.ExistsG(
			[]*alt.Binding{alt.Bind("r2", "R"), alt.Bind("s2", "S")},
			[]*alt.AttrRef{alt.Ref("r2", "dept")},
			alt.AndF(
				alt.Eq(alt.Ref("Y", "dept"), alt.Ref("r2", "dept")),
				alt.Eq(alt.Ref("r2", "empl"), alt.Ref("s2", "empl")),
				alt.Eq(alt.Ref("Y", "sm"), alt.Sum(alt.Ref("s2", "sal"))),
			)))
	return alt.Col("Q", []string{"dept", "av"},
		alt.Exists(
			[]*alt.Binding{alt.BindSub("x", avgCol), alt.BindSub("y", sumCol)},
			alt.AndF(
				alt.Eq(alt.Ref("Q", "dept"), alt.Ref("x", "dept")),
				alt.Eq(alt.Ref("Q", "av"), alt.Ref("x", "av")),
				alt.Eq(alt.Ref("x", "dept"), alt.Ref("y", "dept")),
				alt.Gt(alt.Ref("y", "sm"), alt.CInt(100)),
			)))
}

// MatMul is query (26) without the reified multiplication: sparse matrix
// multiplication over matrices A(row,col,val), B(row,col,val) with
// arithmetic inside the aggregate.
func MatMul() *alt.Collection {
	return alt.Col("C", []string{"row", "col", "val"},
		alt.ExistsG(
			[]*alt.Binding{alt.Bind("a", "A"), alt.Bind("b", "B")},
			[]*alt.AttrRef{alt.Ref("a", "row"), alt.Ref("b", "col")},
			alt.AndF(
				alt.Eq(alt.Ref("C", "row"), alt.Ref("a", "row")),
				alt.Eq(alt.Ref("C", "col"), alt.Ref("b", "col")),
				alt.Eq(alt.Ref("a", "col"), alt.Ref("b", "row")),
				alt.Eq(alt.Ref("C", "val"), alt.Sum(alt.Times(alt.Ref("a", "val"), alt.Ref("b", "val")))),
			)))
}

// MatMulExternal is query (26) as shown in Fig 20: multiplication
// reified as the external relation "*"($1, $2, out).
func MatMulExternal() *alt.Collection {
	return alt.Col("C", []string{"row", "col", "val"},
		alt.ExistsG(
			[]*alt.Binding{alt.Bind("a", "A"), alt.Bind("b", "B"), alt.Bind("f", "*")},
			[]*alt.AttrRef{alt.Ref("a", "row"), alt.Ref("b", "col")},
			alt.AndF(
				alt.Eq(alt.Ref("C", "row"), alt.Ref("a", "row")),
				alt.Eq(alt.Ref("C", "col"), alt.Ref("b", "col")),
				alt.Eq(alt.Ref("a", "col"), alt.Ref("b", "row")),
				alt.Eq(alt.Ref("C", "val"), alt.Sum(alt.Ref("f", "out"))),
				alt.Eq(alt.Ref("f", "$1"), alt.Ref("a", "val")),
				alt.Eq(alt.Ref("f", "$2"), alt.Ref("b", "val")),
			)))
}

// UniqueSet is query (22), the relationally complete unique-set query
// over Likes(drinker, beer), written with four nested negations.
func UniqueSet() *alt.Collection {
	return alt.Col("Q", []string{"d"},
		alt.Exists([]*alt.Binding{alt.Bind("l1", "L")},
			alt.AndF(
				alt.Eq(alt.Ref("Q", "d"), alt.Ref("l1", "d")),
				alt.NotF(alt.Exists([]*alt.Binding{alt.Bind("l2", "L")},
					alt.AndF(
						alt.Ne(alt.Ref("l2", "d"), alt.Ref("l1", "d")),
						alt.NotF(alt.Exists([]*alt.Binding{alt.Bind("l3", "L")},
							alt.AndF(
								alt.Eq(alt.Ref("l3", "d"), alt.Ref("l2", "d")),
								alt.NotF(alt.Exists([]*alt.Binding{alt.Bind("l4", "L")},
									alt.AndF(
										alt.Eq(alt.Ref("l4", "b"), alt.Ref("l3", "b")),
										alt.Eq(alt.Ref("l4", "d"), alt.Ref("l1", "d")),
									))),
							))),
						alt.NotF(alt.Exists([]*alt.Binding{alt.Bind("l5", "L")},
							alt.AndF(
								alt.Eq(alt.Ref("l5", "d"), alt.Ref("l1", "d")),
								alt.NotF(alt.Exists([]*alt.Binding{alt.Bind("l6", "L")},
									alt.AndF(
										alt.Eq(alt.Ref("l6", "d"), alt.Ref("l2", "d")),
										alt.Eq(alt.Ref("l6", "b"), alt.Ref("l5", "b")),
									))),
							))),
					))),
			)))
}

// SubsetAbstract is query (23): the abstract relation Subset(left,right)
// over L(d,b) — drinkers where left's beers ⊆ right's beers. Unsafe in
// isolation; parameters come from the use site.
func SubsetAbstract() *alt.Collection {
	return alt.Col("S", []string{"left", "right"},
		alt.NotF(alt.Exists([]*alt.Binding{alt.Bind("l3", "L")},
			alt.AndF(
				alt.Eq(alt.Ref("l3", "d"), alt.Ref("S", "left")),
				alt.NotF(alt.Exists([]*alt.Binding{alt.Bind("l4", "L")},
					alt.AndF(
						alt.Eq(alt.Ref("l4", "b"), alt.Ref("l3", "b")),
						alt.Eq(alt.Ref("l4", "d"), alt.Ref("S", "right")),
					))),
			))))
}

// UniqueSetModular is query (24): the unique-set query rewritten over the
// abstract Subset relation.
func UniqueSetModular() *alt.Collection {
	return alt.Col("Q", []string{"d"},
		alt.Exists([]*alt.Binding{alt.Bind("l1", "L")},
			alt.AndF(
				alt.Eq(alt.Ref("Q", "d"), alt.Ref("l1", "d")),
				alt.NotF(alt.Exists(
					[]*alt.Binding{alt.Bind("l2", "L"), alt.Bind("s1", "S"), alt.Bind("s2", "S")},
					alt.AndF(
						alt.Ne(alt.Ref("l2", "d"), alt.Ref("l1", "d")),
						alt.Eq(alt.Ref("s1", "left"), alt.Ref("l1", "d")),
						alt.Eq(alt.Ref("s1", "right"), alt.Ref("l2", "d")),
						alt.Eq(alt.Ref("s2", "left"), alt.Ref("l2", "d")),
						alt.Eq(alt.Ref("s2", "right"), alt.Ref("l1", "d")),
					))),
			)))
}

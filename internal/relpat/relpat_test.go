package relpat

import (
	"testing"

	"repro/internal/alt"
	"repro/internal/convention"
	"repro/internal/eval"
	"repro/internal/relation"
	"repro/internal/value"
)

func deptCatalog() *eval.Catalog {
	return eval.NewCatalog().
		AddRelation(relation.New("R", "empl", "dept").
			Add("e1", "d1").Add("e2", "d1").Add("e3", "d2").Add("e4", "d3").Add("e5", "d3")).
		AddRelation(relation.New("S", "empl", "sal").
			Add("e1", 60).Add("e2", 70).Add("e3", 40).Add("e4", 90).Add("e5", 30))
}

func TestAllThreePatternsValidate(t *testing.T) {
	for name, col := range map[string]*alt.Collection{
		"FIO (8)": MultiAggFIO(), "Hella (10)": MultiAggHella(), "Rel (12)": MultiAggRel(),
		"MatMul (26)": MatMul(), "MatMul external": MatMulExternal(),
		"UniqueSet (22)": UniqueSet(), "UniqueSetModular (24)": UniqueSetModular(),
	} {
		if _, err := alt.ValidateCollection(col); err != nil {
			t.Errorf("%s does not validate: %v", name, err)
		}
	}
	if _, err := alt.ValidateAbstract(SubsetAbstract()); err != nil {
		t.Errorf("Subset (23) does not validate as abstract: %v", err)
	}
}

func TestMultiAggPatternsAgree(t *testing.T) {
	// (8), (10), (12) compute the same answer on duplicate-free instances
	// — departments with total salary > 100 and their average.
	cat := deptCatalog()
	want := relation.New("W", "dept", "av").Add("d1", 65.0).Add("d3", 60.0)
	for name, col := range map[string]*alt.Collection{
		"FIO": MultiAggFIO(), "Hella": MultiAggHella(), "Rel": MultiAggRel(),
	} {
		got, err := eval.Eval(col, cat, convention.SetLogic())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !got.EqualSet(want) {
			t.Errorf("%s result:\n%s", name, got)
		}
	}
}

func TestMatMulBothFormsAgree(t *testing.T) {
	a := relation.New("A", "row", "col", "val").
		Add(0, 0, 1).Add(0, 1, 2).Add(1, 0, 3)
	b := relation.New("B", "row", "col", "val").
		Add(0, 0, 4).Add(1, 0, 5).Add(0, 1, 6)
	cat := eval.NewCatalog().WithStandardExternals().AddRelation(a).AddRelation(b)
	direct, err := eval.Eval(MatMul(), cat, convention.SetLogic())
	if err != nil {
		t.Fatal(err)
	}
	reified, err := eval.Eval(MatMulExternal(), cat, convention.SetLogic())
	if err != nil {
		t.Fatal(err)
	}
	if !direct.EqualSet(reified) {
		t.Fatalf("reified multiplication disagrees:\n%s\n%s", direct, reified)
	}
	// C[0][0] = 1*4 + 2*5 = 14.
	if !direct.Contains(relation.Tuple{value.Int(0), value.Int(0), value.Int(14)}) {
		t.Fatalf("matmul wrong:\n%s", direct)
	}
}

func TestUniqueSetAndModularAgree(t *testing.T) {
	likes := relation.New("L", "d", "b").
		Add("d1", "b1").Add("d1", "b2").
		Add("d2", "b1").Add("d2", "b2").
		Add("d3", "b1")
	cat := eval.NewCatalog().AddRelation(likes)
	if err := cat.DefineAbstract(SubsetAbstract()); err != nil {
		t.Fatal(err)
	}
	direct, err := eval.Eval(UniqueSet(), cat, convention.SetLogic())
	if err != nil {
		t.Fatal(err)
	}
	modular, err := eval.Eval(UniqueSetModular(), cat, convention.SetLogic())
	if err != nil {
		t.Fatal(err)
	}
	want := relation.New("W", "d").Add("d3")
	if !direct.EqualSet(want) {
		t.Fatalf("unique-set direct:\n%s", direct)
	}
	if !modular.EqualSet(want) {
		t.Fatalf("unique-set modular:\n%s", modular)
	}
}

// dml.go extends the SQL surface beyond queries: INSERT/DELETE (DML),
// CREATE TABLE (DDL), and BEGIN/COMMIT/ROLLBACK (transaction control),
// unified under the Statement interface so the engine can prepare any
// statement and dispatch on its kind. The write-path subset is
// deliberately small — the paper's unification argument is about the
// query languages; writes just need to exist so the system is a
// database rather than a query service.
package sql

import "strings"

// Statement is anything executable: every Query is a Statement, as are
// the DML, DDL, and transaction-control nodes below.
type Statement interface {
	isStatement()
	// String renders the statement as SQL text.
	String() string
}

func (*Select) isStatement() {}
func (*Union) isStatement()  {}
func (*With) isStatement()   {}

// Insert is INSERT INTO table [(cols)] VALUES (…), … or
// INSERT INTO table [(cols)] query. Exactly one of Rows and Query is
// set.
type Insert struct {
	Table string
	// Cols optionally names the target columns; unnamed columns of the
	// target receive NULL. Empty means the table's full column list in
	// order.
	Cols  []string
	Rows  [][]Expr // VALUES form: literals, params, arithmetic
	Query Query    // INSERT … SELECT form
}

func (*Insert) isStatement() {}

// String renders the INSERT.
func (i *Insert) String() string {
	var b strings.Builder
	b.WriteString("INSERT INTO ")
	b.WriteString(i.Table)
	if len(i.Cols) > 0 {
		b.WriteString(" (" + strings.Join(i.Cols, ", ") + ")")
	}
	if i.Query != nil {
		b.WriteString(" " + i.Query.String())
		return b.String()
	}
	b.WriteString(" VALUES ")
	for ri, row := range i.Rows {
		if ri > 0 {
			b.WriteString(", ")
		}
		b.WriteString("(" + joinExprs(row, ", ") + ")")
	}
	return b.String()
}

// Delete is DELETE FROM table [alias] [WHERE cond].
type Delete struct {
	Table string
	Alias string
	Where Expr
}

func (*Delete) isStatement() {}

// Binding is the row-variable name WHERE resolves against: the alias if
// present, else the table name.
func (d *Delete) Binding() string {
	if d.Alias != "" {
		return d.Alias
	}
	return d.Table
}

// String renders the DELETE.
func (d *Delete) String() string {
	var b strings.Builder
	b.WriteString("DELETE FROM ")
	b.WriteString(d.Table)
	if d.Alias != "" {
		b.WriteString(" " + d.Alias)
	}
	if d.Where != nil {
		b.WriteString(" WHERE " + d.Where.String())
	}
	return b.String()
}

// Update is UPDATE table [alias] SET col = expr, … [WHERE cond]. Cols
// and Exprs pair up positionally.
type Update struct {
	Table string
	Alias string
	Cols  []string
	Exprs []Expr
	Where Expr
}

func (*Update) isStatement() {}

// Binding is the row-variable name SET expressions and WHERE resolve
// against: the alias if present, else the table name.
func (u *Update) Binding() string {
	if u.Alias != "" {
		return u.Alias
	}
	return u.Table
}

// String renders the UPDATE.
func (u *Update) String() string {
	var b strings.Builder
	b.WriteString("UPDATE ")
	b.WriteString(u.Table)
	if u.Alias != "" {
		b.WriteString(" " + u.Alias)
	}
	b.WriteString(" SET ")
	for i, c := range u.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c + " = " + u.Exprs[i].String())
	}
	if u.Where != nil {
		b.WriteString(" WHERE " + u.Where.String())
	}
	return b.String()
}

// CreateTable is CREATE TABLE name (col [type], …). Column types are
// accepted and discarded: values are dynamically typed, per the value
// package.
type CreateTable struct {
	Name string
	Cols []string
}

func (*CreateTable) isStatement() {}

// String renders the CREATE TABLE.
func (c *CreateTable) String() string {
	return "CREATE TABLE " + c.Name + " (" + strings.Join(c.Cols, ", ") + ")"
}

// DropTable is DROP TABLE name.
type DropTable struct {
	Name string
}

func (*DropTable) isStatement() {}

// String renders the DROP TABLE.
func (d *DropTable) String() string { return "DROP TABLE " + d.Name }

// BeginStmt is BEGIN [TRANSACTION].
type BeginStmt struct{}

func (*BeginStmt) isStatement() {}

// String renders BEGIN.
func (*BeginStmt) String() string { return "BEGIN" }

// CommitStmt is COMMIT.
type CommitStmt struct{}

func (*CommitStmt) isStatement() {}

// String renders COMMIT.
func (*CommitStmt) String() string { return "COMMIT" }

// RollbackStmt is ROLLBACK.
type RollbackStmt struct{}

func (*RollbackStmt) isStatement() {}

// String renders ROLLBACK.
func (*RollbackStmt) String() string { return "ROLLBACK" }

// MaxParamStmt is MaxParam over any statement: the largest placeholder
// index used anywhere (0 when there are none).
func MaxParamStmt(s Statement) int {
	max := 0
	bump := func(e Expr) {
		// Walk requires a Query root; wrap the expression in a synthetic
		// select item to reuse its expression traversal.
		Walk(&Select{Items: []SelectItem{{Expr: e}}}, nil, func(x Expr) {
			if p, ok := x.(*Param); ok && p.Index > max {
				max = p.Index
			}
		}, nil)
	}
	switch x := s.(type) {
	case Query:
		return MaxParam(x)
	case *Insert:
		if x.Query != nil {
			return MaxParam(x.Query)
		}
		for _, row := range x.Rows {
			for _, e := range row {
				bump(e)
			}
		}
	case *Delete:
		if x.Where != nil {
			bump(x.Where)
		}
	case *Update:
		for _, e := range x.Exprs {
			bump(e)
		}
		if x.Where != nil {
			bump(x.Where)
		}
	}
	return max
}

// ParseStatement parses any statement: queries via Parse's grammar, plus
// INSERT, DELETE, CREATE TABLE, and BEGIN/COMMIT/ROLLBACK.
func ParseStatement(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(";")
	if !p.atEOF() {
		return nil, p.errf("trailing input starting at %q", p.peek().text)
	}
	return st, nil
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.peekKw("insert"):
		return p.parseInsert()
	case p.peekKw("delete"):
		return p.parseDelete()
	case p.peekKw("update"):
		return p.parseUpdate()
	case p.peekKw("create"):
		return p.parseCreateTable()
	case p.peekKw("drop"):
		return p.parseDropTable()
	case p.acceptKw("begin"):
		p.acceptKw("transaction")
		return &BeginStmt{}, nil
	case p.acceptKw("start", "transaction"):
		return &BeginStmt{}, nil
	case p.acceptKw("commit"):
		p.acceptKw("transaction")
		return &CommitStmt{}, nil
	case p.acceptKw("rollback"):
		p.acceptKw("transaction")
		return &RollbackStmt{}, nil
	}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q.(Statement), nil
}

// parseName consumes a non-reserved identifier (a table or column name).
func (p *parser) parseName(what string) (string, error) {
	t := p.peek()
	if t.kind != tokIdent || reserved[t.text] {
		return "", p.errf("expected %s, found %q", what, t.text)
	}
	p.pos++
	return t.raw, nil
}

func (p *parser) parseInsert() (Statement, error) {
	p.acceptKw("insert")
	if err := p.expectKw("into"); err != nil {
		return nil, err
	}
	name, err := p.parseName("table name")
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: name}
	if p.accept("(") {
		for {
			col, err := p.parseName("column name")
			if err != nil {
				return nil, err
			}
			ins.Cols = append(ins.Cols, col)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	if p.acceptKw("values") {
		for {
			if err := p.expect("("); err != nil {
				return nil, err
			}
			var row []Expr
			for {
				e, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			ins.Rows = append(ins.Rows, row)
			if !p.accept(",") {
				break
			}
		}
		return ins, nil
	}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	ins.Query = q
	return ins, nil
}

func (p *parser) parseDelete() (Statement, error) {
	p.acceptKw("delete")
	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	name, err := p.parseName("table name")
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: name}
	p.acceptKw("as")
	if t := p.peek(); t.kind == tokIdent && !reserved[t.text] {
		p.pos++
		del.Alias = t.raw
	}
	if p.acceptKw("where") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		del.Where = e
	}
	return del, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	p.acceptKw("update")
	name, err := p.parseName("table name")
	if err != nil {
		return nil, err
	}
	up := &Update{Table: name}
	p.acceptKw("as")
	if t := p.peek(); t.kind == tokIdent && !reserved[t.text] {
		p.pos++
		up.Alias = t.raw
	}
	if err := p.expectKw("set"); err != nil {
		return nil, err
	}
	for {
		col, err := p.parseName("column name")
		if err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		// Additive expressions over literals, placeholders, and row
		// columns — the same scalar fragment INSERT VALUES uses, plus
		// column references (v = v + 1).
		e, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		up.Cols = append(up.Cols, col)
		up.Exprs = append(up.Exprs, e)
		if !p.accept(",") {
			break
		}
	}
	if p.acceptKw("where") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		up.Where = e
	}
	return up, nil
}

func (p *parser) parseDropTable() (Statement, error) {
	p.acceptKw("drop")
	if err := p.expectKw("table"); err != nil {
		return nil, err
	}
	name, err := p.parseName("table name")
	if err != nil {
		return nil, err
	}
	return &DropTable{Name: name}, nil
}

func (p *parser) parseCreateTable() (Statement, error) {
	p.acceptKw("create")
	if err := p.expectKw("table"); err != nil {
		return nil, err
	}
	name, err := p.parseName("table name")
	if err != nil {
		return nil, err
	}
	ct := &CreateTable{Name: name}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	for {
		col, err := p.parseName("column name")
		if err != nil {
			return nil, err
		}
		ct.Cols = append(ct.Cols, col)
		// Optional type annotation(s): swallow identifiers up to the next
		// ',' or ')' — "x int", "name text not null" all parse; the engine
		// is dynamically typed and ignores them.
		for {
			t := p.peek()
			if t.kind == tokIdent && !reserved[t.text] {
				p.pos++
				continue
			}
			if t.kind == tokIdent && (t.text == "not" || t.text == "null") {
				p.pos++
				continue
			}
			break
		}
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return ct, nil
}

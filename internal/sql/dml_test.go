package sql

import (
	"strings"
	"testing"
)

func TestParseStatementKinds(t *testing.T) {
	cases := []struct {
		src  string
		want string // rendered form (round-trip pin)
	}{
		{"INSERT INTO t VALUES (1, 'a'), (2, 'b')", "INSERT INTO t VALUES (1, 'a'), (2, 'b')"},
		{"insert into t (x, y) values ($1, $2);", "INSERT INTO t (x, y) VALUES ($1, $2)"},
		{"INSERT INTO t SELECT x FROM s", "INSERT INTO t SELECT x FROM s"},
		{"INSERT INTO t (x) SELECT x FROM s WHERE x > 3", "INSERT INTO t (x) SELECT x FROM s WHERE x > 3"},
		{"DELETE FROM t", "DELETE FROM t"},
		{"DELETE FROM t WHERE x = $1", "DELETE FROM t WHERE x = $1"},
		{"DELETE FROM t u WHERE u.x > 2", "DELETE FROM t u WHERE u.x > 2"},
		{"CREATE TABLE t (x int, y text)", "CREATE TABLE t (x, y)"},
		{"create table t (x, y)", "CREATE TABLE t (x, y)"},
		{"BEGIN", "BEGIN"},
		{"begin transaction;", "BEGIN"},
		{"START TRANSACTION", "BEGIN"},
		{"COMMIT", "COMMIT"},
		{"ROLLBACK;", "ROLLBACK"},
		{"SELECT x FROM t WHERE x = 1", "SELECT x FROM t WHERE x = 1"},
	}
	for _, c := range cases {
		st, err := ParseStatement(c.src)
		if err != nil {
			t.Errorf("ParseStatement(%q): %v", c.src, err)
			continue
		}
		if got := st.String(); got != c.want {
			t.Errorf("ParseStatement(%q).String() = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestParseStatementErrors(t *testing.T) {
	for _, src := range []string{
		"INSERT t VALUES (1)",        // missing INTO
		"INSERT INTO t",              // no VALUES or query
		"INSERT INTO t VALUES 1",     // unparenthesized row
		"DELETE t",                   // missing FROM
		"CREATE TABLE t",             // missing column list
		"CREATE TABLE (x)",           // missing name
		"DELETE FROM t WHERE",        // dangling WHERE
		"INSERT INTO t VALUES (1) x", // trailing input
		"CREATE TABLE select (x)",    // reserved name
	} {
		if _, err := ParseStatement(src); err == nil {
			t.Errorf("ParseStatement(%q) succeeded, want error", src)
		}
	}
}

func TestMaxParamStmt(t *testing.T) {
	cases := []struct {
		src  string
		want int
	}{
		{"INSERT INTO t VALUES ($1, $3)", 3},
		{"INSERT INTO t VALUES (1, 2)", 0},
		{"INSERT INTO t SELECT x FROM s WHERE x = $2", 2},
		{"DELETE FROM t WHERE x = $4", 4},
		{"DELETE FROM t", 0},
		{"SELECT x FROM t WHERE x = $1", 1},
		{"BEGIN", 0},
	}
	for _, c := range cases {
		st, err := ParseStatement(c.src)
		if err != nil {
			t.Fatalf("ParseStatement(%q): %v", c.src, err)
		}
		if got := MaxParamStmt(st); got != c.want {
			t.Errorf("MaxParamStmt(%q) = %d, want %d", c.src, got, c.want)
		}
	}
}

func TestParseStatementQueryStillWorks(t *testing.T) {
	st, err := ParseStatement("WITH v AS (SELECT x FROM t) SELECT x FROM v UNION SELECT y FROM u")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.(Query); !ok {
		t.Fatalf("expected a Query statement, got %T", st)
	}
	if !strings.HasPrefix(st.String(), "WITH v AS") {
		t.Fatalf("bad render: %s", st.String())
	}
}

package sql

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/value"
)

// Parse parses a SQL query (SELECT or UNION chain, optional trailing
// semicolon) into its AST.
func Parse(src string) (Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	p.accept(";")
	if !p.atEOF() {
		return nil, p.errf("trailing input starting at %q", p.peek().text)
	}
	return q, nil
}

// MustParse parses or panics; for tests and fixtures.
func MustParse(src string) Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

// next consumes and returns the current token; it never advances past EOF.
func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}
func (p *parser) save() int     { return p.pos }
func (p *parser) restore(m int) { p.pos = m }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: %s (near offset %d)", fmt.Sprintf(format, args...), p.peek().pos)
}

// acceptKw consumes the given keyword(s) if present.
func (p *parser) acceptKw(words ...string) bool {
	mark := p.pos
	for _, w := range words {
		t := p.peek()
		if t.kind != tokIdent || t.text != w {
			p.pos = mark
			return false
		}
		p.pos++
	}
	return true
}

func (p *parser) expectKw(w string) error {
	if !p.acceptKw(w) {
		return p.errf("expected %q, found %q", strings.ToUpper(w), p.peek().text)
	}
	return nil
}

// accept consumes the given symbol if present.
func (p *parser) accept(sym string) bool {
	t := p.peek()
	if t.kind == tokSymbol && t.text == sym {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(sym string) error {
	if !p.accept(sym) {
		return p.errf("expected %q, found %q", sym, p.peek().text)
	}
	return nil
}

func (p *parser) peekKw(w string) bool {
	t := p.peek()
	return t.kind == tokIdent && t.text == w
}

// reserved keywords that terminate identifiers-as-aliases.
var reserved = map[string]bool{
	"select": true, "from": true, "where": true, "group": true, "by": true,
	"having": true, "union": true, "all": true, "distinct": true, "as": true,
	"join": true, "inner": true, "left": true, "right": true, "full": true,
	"outer": true, "cross": true, "lateral": true, "on": true, "and": true,
	"or": true, "not": true, "exists": true, "in": true, "is": true,
	"null": true, "true": true, "false": true, "order": true, "into": true,
	"with": true, "recursive": true, "between": true, "set": true,
}

func (p *parser) parseQuery() (Query, error) {
	if p.acceptKw("with") {
		return p.parseWith()
	}
	left, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	var q Query = left
	for p.acceptKw("union") {
		all := p.acceptKw("all")
		right, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		q = &Union{Left: q, Right: right, All: all}
	}
	return q, nil
}

// parseWith parses the CTE list and body after a consumed WITH keyword.
func (p *parser) parseWith() (Query, error) {
	w := &With{Recursive: p.acceptKw("recursive")}
	for {
		t := p.next()
		if t.kind != tokIdent || reserved[t.text] {
			return nil, p.errf("expected CTE name, found %q", t.text)
		}
		cte := CTE{Name: t.raw}
		if p.accept("(") {
			for {
				c := p.next()
				if c.kind != tokIdent || reserved[c.text] {
					return nil, p.errf("expected column name in CTE %q, found %q", cte.Name, c.text)
				}
				cte.Cols = append(cte.Cols, c.raw)
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
		}
		if err := p.expectKw("as"); err != nil {
			return nil, err
		}
		if err := p.expect("("); err != nil {
			return nil, err
		}
		q, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		cte.Query = q
		w.CTEs = append(w.CTEs, cte)
		if !p.accept(",") {
			break
		}
	}
	body, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	w.Body = body
	return w, nil
}

func (p *parser) parseSelect() (*Select, error) {
	if err := p.expectKw("select"); err != nil {
		return nil, err
	}
	s := &Select{Distinct: p.acceptKw("distinct")}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if !p.accept(",") {
			break
		}
	}
	if p.acceptKw("from") {
		for {
			ref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			s.From = append(s.From, ref)
			if !p.accept(",") {
				break
			}
		}
	}
	if p.acceptKw("where") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	if p.acceptKw("group") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if !p.accept(",") {
				break
			}
		}
	}
	if p.acceptKw("having") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Having = e
	}
	if p.acceptKw("order") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			t := p.next()
			if t.kind != tokIdent {
				return nil, p.errf("ORDER BY expects an output column name, found %q", t.text)
			}
			item := sqlOrderItem(t.raw)
			switch {
			case p.acceptKw("desc"):
				item.Desc = true
			case p.acceptKw("asc"):
			}
			s.OrderBy = append(s.OrderBy, item)
			if !p.accept(",") {
				break
			}
		}
	}
	return s, nil
}

func sqlOrderItem(col string) OrderItem { return OrderItem{Col: col} }

func (p *parser) parseSelectItem() (SelectItem, error) {
	// Full expression grammar: select items may be EXISTS(...) or other
	// boolean expressions (Fig 9a uses SELECT EXISTS(...)).
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKw("as") {
		t := p.next()
		if t.kind != tokIdent {
			return SelectItem{}, p.errf("expected alias after AS")
		}
		item.Alias = t.raw
	} else if t := p.peek(); t.kind == tokIdent && !reserved[t.text] {
		p.pos++
		item.Alias = t.raw
	}
	return item, nil
}

// parseTableRef parses one FROM item with its join chain.
func (p *parser) parseTableRef() (TableRef, error) {
	left, err := p.parsePrimaryTable()
	if err != nil {
		return nil, err
	}
	for {
		var kind JoinKind
		switch {
		case p.acceptKw("inner", "join"), p.peekKw("join") && p.acceptKw("join"):
			kind = JoinInner
		case p.acceptKw("left", "outer", "join"), p.acceptKw("left", "join"):
			kind = JoinLeft
		case p.acceptKw("full", "outer", "join"), p.acceptKw("full", "join"):
			kind = JoinFull
		case p.acceptKw("cross", "join"):
			kind = JoinCross
		default:
			return left, nil
		}
		right, err := p.parsePrimaryTable()
		if err != nil {
			return nil, err
		}
		j := &JoinRef{Kind: kind, Left: left, Right: right}
		if kind != JoinCross {
			if err := p.expectKw("on"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			// "ON TRUE" (the lateral-join idiom) means no condition.
			if lit, ok := on.(*Lit); !ok || lit.Val.Kind() != value.KindBool || !lit.Val.AsBool() {
				j.On = on
			}
		}
		left = j
	}
}

func (p *parser) parsePrimaryTable() (TableRef, error) {
	lateral := p.acceptKw("lateral")
	if p.accept("(") {
		q, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		sub := &SubqueryTable{Query: q, Lateral: lateral}
		p.acceptKw("as")
		if t := p.peek(); t.kind == tokIdent && !reserved[t.text] {
			p.pos++
			sub.Alias = t.raw
		}
		if sub.Alias == "" {
			return nil, p.errf("derived table requires an alias")
		}
		return sub, nil
	}
	if lateral {
		return nil, p.errf("LATERAL must be followed by a subquery")
	}
	t := p.next()
	if t.kind != tokIdent {
		return nil, p.errf("expected table name, found %q", t.text)
	}
	bt := &BaseTable{Name: t.raw}
	p.acceptKw("as")
	if a := p.peek(); a.kind == tokIdent && !reserved[a.text] {
		p.pos++
		bt.Alias = a.raw
	}
	return bt, nil
}

// Expression grammar: Or > And > Not > comparison > additive > term.

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	kids := []Expr{left}
	for p.acceptKw("or") {
		k, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		kids = append(kids, k)
	}
	if len(kids) == 1 {
		return left, nil
	}
	return &OrE{Kids: kids}, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	kids := []Expr{left}
	for p.acceptKw("and") {
		k, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		kids = append(kids, k)
	}
	if len(kids) == 1 {
		return left, nil
	}
	return &AndE{Kids: kids}, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKw("not") {
		if p.peekKw("exists") {
			e, err := p.parseNot()
			if err != nil {
				return nil, err
			}
			if ex, ok := e.(*Exists); ok {
				ex.Negated = !ex.Negated
				return ex, nil
			}
			return &NotE{Kid: e}, nil
		}
		k, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotE{Kid: k}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	if p.peekKw("exists") {
		p.pos++
		if err := p.expect("("); err != nil {
			return nil, err
		}
		q, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &Exists{Query: q}, nil
	}
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.acceptKw("is") {
		neg := p.acceptKw("not")
		if err := p.expectKw("null"); err != nil {
			return nil, err
		}
		return &IsNullE{Arg: left, Negated: neg}, nil
	}
	// [NOT] IN (subquery) / [NOT] BETWEEN lo AND hi
	if p.acceptKw("not") {
		if p.acceptKw("between") {
			rng, err := p.parseBetween(left)
			if err != nil {
				return nil, err
			}
			return &NotE{Kid: rng}, nil
		}
		if err := p.expectKw("in"); err != nil {
			return nil, err
		}
		return p.parseIn(left, true)
	}
	if p.acceptKw("in") {
		return p.parseIn(left, false)
	}
	if p.acceptKw("between") {
		return p.parseBetween(left)
	}
	// comparison operator
	t := p.peek()
	if t.kind == tokSymbol {
		var op value.CmpOp
		found := true
		switch t.text {
		case "=":
			op = value.Eq
		case "<>", "!=":
			op = value.Ne
		case "<":
			op = value.Lt
		case "<=":
			op = value.Le
		case ">":
			op = value.Gt
		case ">=":
			op = value.Ge
		default:
			found = false
		}
		if found {
			p.pos++
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &Cmp{Op: op, L: left, R: right}, nil
		}
	}
	return left, nil
}

// parseBetween desugars `x BETWEEN lo AND hi` into x >= lo AND x <= hi
// — no dedicated AST node, so every downstream consumer (3VL
// evaluation, the planner's range pushdown, sql2arc) sees the two
// ordering conjuncts it already understands. Bounds are additive
// expressions: the AND after the low bound belongs to the BETWEEN.
func (p *parser) parseBetween(left Expr) (Expr, error) {
	lo, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("and"); err != nil {
		return nil, err
	}
	hi, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return &AndE{Kids: []Expr{
		&Cmp{Op: value.Ge, L: left, R: lo},
		&Cmp{Op: value.Le, L: left, R: hi},
	}}, nil
}

func (p *parser) parseIn(left Expr, negated bool) (Expr, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return &InE{Left: left, Query: q, Negated: negated}, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("+"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &BinE{Op: '+', L: left, R: r}
		case p.accept("-"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &BinE{Op: '-', L: left, R: r}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("*"):
			r, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			left = &BinE{Op: '*', L: left, R: r}
		case p.accept("/"):
			r, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			left = &BinE{Op: '/', L: left, R: r}
		default:
			return left, nil
		}
	}
}

var aggNames = map[string]bool{
	"sum": true, "count": true, "avg": true, "min": true, "max": true,
	"countdistinct": true, "average": true,
}

func (p *parser) parseTerm() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.pos++
		if strings.Contains(t.text, ".") {
			f, _ := strconv.ParseFloat(t.text, 64)
			return &Lit{Val: value.Float(f)}, nil
		}
		i, _ := strconv.ParseInt(t.text, 10, 64)
		return &Lit{Val: value.Int(i)}, nil
	case tokString:
		p.pos++
		return &Lit{Val: value.Str(t.text)}, nil
	case tokSymbol:
		switch t.text {
		case "(":
			// Parenthesized expression OR scalar subquery.
			mark := p.save()
			p.pos++
			if p.peekKw("select") {
				q, err := p.parseQuery()
				if err != nil {
					return nil, err
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
				return &Scalar{Query: q}, nil
			}
			p.restore(mark)
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return e, nil
		case "-":
			p.pos++
			e, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			if l, ok := e.(*Lit); ok && l.Val.IsNumeric() {
				if l.Val.Kind() == value.KindInt {
					return &Lit{Val: value.Int(-l.Val.AsInt())}, nil
				}
				return &Lit{Val: value.Float(-l.Val.AsFloat())}, nil
			}
			return &BinE{Op: '-', L: &Lit{Val: value.Int(0)}, R: e}, nil
		}
	case tokIdent:
		switch t.text {
		case "null":
			p.pos++
			return &Lit{Val: value.Null()}, nil
		case "true":
			p.pos++
			return &Lit{Val: value.Bool(true)}, nil
		case "false":
			p.pos++
			return &Lit{Val: value.Bool(false)}, nil
		}
		// $n positional placeholder (the lexer folds "$1" into one
		// identifier token).
		if strings.HasPrefix(t.text, "$") {
			n, err := strconv.Atoi(t.text[1:])
			if err != nil || n < 1 {
				return nil, p.errf("bad placeholder %q (want $1, $2, …)", t.raw)
			}
			p.pos++
			return &Param{Index: n}, nil
		}
		if aggNames[t.text] {
			mark := p.save()
			p.pos++
			if p.accept("(") {
				f := &FuncE{Name: t.text}
				if f.Name == "average" {
					f.Name = "avg"
				}
				if p.accept("*") {
					f.Star = true
				} else {
					f.Distinct = p.acceptKw("distinct")
					arg, err := p.parseAdditive()
					if err != nil {
						return nil, err
					}
					f.Arg = arg
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
				return f, nil
			}
			p.restore(mark)
		}
		// Column reference: ident or ident.ident (the table part may be a
		// quoted symbolic name like "-" for relationalized operators).
		p.pos++
		if p.accept(".") {
			col := p.next()
			if col.kind != tokIdent {
				return nil, p.errf("expected column after %q.", t.raw)
			}
			return &ColRef{Table: t.raw, Column: col.raw}, nil
		}
		return &ColRef{Column: t.raw}, nil
	}
	return nil, p.errf("unexpected token %q", t.text)
}

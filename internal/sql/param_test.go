package sql

import (
	"reflect"
	"testing"
)

func TestParamParseAndRender(t *testing.T) {
	q, err := Parse("select R.A from R where R.A = $1 and R.B = $2")
	if err != nil {
		t.Fatal(err)
	}
	if got := MaxParam(q); got != 2 {
		t.Fatalf("MaxParam = %d, want 2", got)
	}
	src := q.String()
	q2, err := Parse(src)
	if err != nil {
		t.Fatalf("re-parse of %q: %v", src, err)
	}
	if q2.String() != src {
		t.Fatalf("placeholder rendering does not round-trip: %q vs %q", src, q2.String())
	}
}

func TestParamInNestedPositions(t *testing.T) {
	q, err := Parse(`with recursive w(x, d) as (
		select R.A, 1 from R where R.A = $3
		union all
		select w.x, w.d + 1 from w, R where w.x = R.A and w.d < $1
	) select w.x from w where exists (select 1 from S where S.B = $2)`)
	if err != nil {
		t.Fatal(err)
	}
	if got := MaxParam(q); got != 3 {
		t.Fatalf("MaxParam = %d, want 3", got)
	}
}

func TestParamErrors(t *testing.T) {
	for _, src := range []string{
		"select R.A from R where R.A = $0",
		"select R.A from R where R.A = $x",
	} {
		if _, err := Parse(src); err == nil {
			t.Fatalf("expected a placeholder error for %q", src)
		}
	}
}

func TestTables(t *testing.T) {
	q := MustParse(`with w as (select T.A from T)
		select R.A from R join S on R.B = S.B
		where exists (select 1 from U where U.C = R.A) and R.B in (select V.B from V)`)
	got := Tables(q)
	want := []string{"T", "R", "S", "U", "V"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tables = %v, want %v", got, want)
	}
}

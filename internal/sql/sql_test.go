package sql

import (
	"strings"
	"testing"

	"repro/internal/value"
)

func mustSelect(t *testing.T, src string) *Select {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	s, ok := q.(*Select)
	if !ok {
		t.Fatalf("parse %q: got %T, want *Select", src, q)
	}
	return s
}

func TestParseSimpleSelect(t *testing.T) {
	s := mustSelect(t, "select R.A, S.B from R, S where R.B = S.B and S.C = 0")
	if len(s.Items) != 2 || len(s.From) != 2 {
		t.Fatalf("items=%d from=%d", len(s.Items), len(s.From))
	}
	and, ok := s.Where.(*AndE)
	if !ok || len(and.Kids) != 2 {
		t.Fatalf("where = %T", s.Where)
	}
	cmp := and.Kids[1].(*Cmp)
	if cmp.Op != value.Eq || cmp.R.(*Lit).Val.AsInt() != 0 {
		t.Fatal("comparison parse broken")
	}
}

func TestParseDistinctAndAliases(t *testing.T) {
	s := mustSelect(t, "select distinct L1.drinker as d from Likes L1")
	if !s.Distinct {
		t.Fatal("DISTINCT missing")
	}
	if s.Items[0].Alias != "d" {
		t.Fatalf("alias = %q", s.Items[0].Alias)
	}
	bt := s.From[0].(*BaseTable)
	if bt.Name != "Likes" || bt.Alias != "L1" {
		t.Fatalf("table = %+v", bt)
	}
}

// Fig 4a: grouped aggregate.
func TestParseGroupBy(t *testing.T) {
	s := mustSelect(t, "select R.A, sum(R.B) sm from R group by R.A")
	if len(s.GroupBy) != 1 {
		t.Fatalf("group by = %v", s.GroupBy)
	}
	f := s.Items[1].Expr.(*FuncE)
	if f.Name != "sum" || s.Items[1].Alias != "sm" {
		t.Fatalf("aggregate item = %v alias=%q", f, s.Items[1].Alias)
	}
}

// Fig 6a: multiple aggregates with HAVING.
func TestParseHaving(t *testing.T) {
	s := mustSelect(t, `select R.dept, avg(S.sal) av
		from R, S
		where R.empl = S.empl
		group by R.dept
		having sum(S.sal) > 100`)
	if s.Having == nil {
		t.Fatal("HAVING missing")
	}
	cmp := s.Having.(*Cmp)
	if cmp.L.(*FuncE).Name != "sum" || cmp.Op != value.Gt {
		t.Fatal("HAVING parse broken")
	}
}

// Fig 3a / Fig 5b: lateral joins.
func TestParseLateralJoin(t *testing.T) {
	s := mustSelect(t, `select x.A, z.B from X as x
		join lateral (select y.A as B from Y as y where x.A < y.A) as z on true`)
	j := s.From[0].(*JoinRef)
	if j.Kind != JoinInner || j.On != nil {
		t.Fatalf("join = %+v (ON TRUE should become nil)", j)
	}
	sub := j.Right.(*SubqueryTable)
	if !sub.Lateral || sub.Alias != "z" {
		t.Fatalf("lateral subquery = %+v", sub)
	}
}

// Fig 13c / Fig 21c: LEFT JOIN with GROUP BY.
func TestParseLeftJoin(t *testing.T) {
	s := mustSelect(t, `select R2.id, count(S.d) as ct
		from R R2 left join S on R2.id = S.id group by R2.id`)
	j := s.From[0].(*JoinRef)
	if j.Kind != JoinLeft || j.On == nil {
		t.Fatalf("left join = %+v", j)
	}
	if j.Left.(*BaseTable).Alias != "R2" {
		t.Fatal("alias on left join input broken")
	}
	f := s.Items[1].Expr.(*FuncE)
	if f.Name != "count" || f.Star {
		t.Fatal("count(S.d) parse broken")
	}
}

func TestParseLeftOuterJoin(t *testing.T) {
	s := mustSelect(t, `select R.m, S.n from R left outer join S on (R.h = 11 and R.y = S.y)`)
	j := s.From[0].(*JoinRef)
	if j.Kind != JoinLeft {
		t.Fatalf("kind = %v", j.Kind)
	}
	if _, ok := j.On.(*AndE); !ok {
		t.Fatalf("ON = %T", j.On)
	}
}

// Fig 5a / Fig 21a: scalar subqueries.
func TestParseScalarSubquery(t *testing.T) {
	s := mustSelect(t, `select R.id from R
		where R.q = (select count(S.d) from S where S.id = R.id)`)
	cmp := s.Where.(*Cmp)
	sc, ok := cmp.R.(*Scalar)
	if !ok {
		t.Fatalf("scalar subquery = %T", cmp.R)
	}
	if _, ok := sc.Query.(*Select); !ok {
		t.Fatal("scalar body missing")
	}
}

// Fig 11: NOT IN and NOT EXISTS with IS NULL.
func TestParseNotInAndExists(t *testing.T) {
	s := mustSelect(t, `select R.A from R where R.A not in (select S.A from S)`)
	in := s.Where.(*InE)
	if !in.Negated {
		t.Fatal("NOT IN missing")
	}
	s2 := mustSelect(t, `select R.A from R where not exists
		(select 1 from S where S.A = R.A or S.A is null or R.A is null)`)
	ex := s2.Where.(*Exists)
	if !ex.Negated {
		t.Fatal("NOT EXISTS missing")
	}
	inner := ex.Query.(*Select)
	or := inner.Where.(*OrE)
	if len(or.Kids) != 3 {
		t.Fatalf("OR kids = %d", len(or.Kids))
	}
	if n, ok := or.Kids[1].(*IsNullE); !ok || n.Negated {
		t.Fatalf("IS NULL parse broken: %T", or.Kids[1])
	}
}

// Fig 17: deeply nested NOT EXISTS (unique-set query).
func TestParseUniqueSetQuery(t *testing.T) {
	src := `select distinct L1.drinker from Likes L1
	where not exists
	  (select 1 from Likes L2
	   where L1.drinker <> L2.drinker
	   and not exists
	     (select 1 from Likes L3
	      where L3.drinker = L2.drinker
	      and not exists
	        (select 1 from Likes L4
	         where L4.drinker = L1.drinker and L4.beer = L3.beer))
	   and not exists
	     (select 1 from Likes L5
	      where L5.drinker = L1.drinker
	      and not exists
	        (select 1 from Likes L6
	         where L6.drinker = L2.drinker and L6.beer = L5.beer)))`
	s := mustSelect(t, src)
	if !s.Distinct {
		t.Fatal("DISTINCT missing")
	}
	depth := 0
	var count func(e Expr)
	count = func(e Expr) {
		switch x := e.(type) {
		case *Exists:
			depth++
			if sel, ok := x.Query.(*Select); ok && sel.Where != nil {
				count(sel.Where)
			}
		case *AndE:
			for _, k := range x.Kids {
				count(k)
			}
		case *OrE:
			for _, k := range x.Kids {
				count(k)
			}
		case *NotE:
			count(x.Kid)
		}
	}
	count(s.Where)
	if depth != 5 {
		t.Fatalf("found %d EXISTS, want 5", depth)
	}
}

func TestParseUnion(t *testing.T) {
	q, err := Parse("select R.A from R union all select S.A from S union select T.A from T")
	if err != nil {
		t.Fatal(err)
	}
	u := q.(*Union)
	if u.All {
		t.Fatal("outer union should be plain UNION")
	}
	inner := u.Left.(*Union)
	if !inner.All {
		t.Fatal("inner union should be UNION ALL")
	}
}

func TestParseArithmetic(t *testing.T) {
	s := mustSelect(t, "select R.A from R, S, T where R.B - S.B > T.B")
	cmp := s.Where.(*Cmp)
	b := cmp.L.(*BinE)
	if b.Op != '-' {
		t.Fatalf("op = %c", b.Op)
	}
	s2 := mustSelect(t, "select A.val * B.val as v from A, B")
	if s2.Items[0].Expr.(*BinE).Op != '*' {
		t.Fatal("* parse broken")
	}
}

func TestParsePrecedence(t *testing.T) {
	s := mustSelect(t, "select R.A from R where R.A = 1 or R.A = 2 and R.B = 3")
	or, ok := s.Where.(*OrE)
	if !ok || len(or.Kids) != 2 {
		t.Fatalf("OR should be top: %T", s.Where)
	}
	if _, ok := or.Kids[1].(*AndE); !ok {
		t.Fatal("AND should bind tighter than OR")
	}
	s2 := mustSelect(t, "select R.A from R where R.A = 1 + 2 * 3")
	cmp := s2.Where.(*Cmp)
	add := cmp.R.(*BinE)
	if add.Op != '+' || add.R.(*BinE).Op != '*' {
		t.Fatal("* should bind tighter than +")
	}
}

func TestParseCountStarAndDistinct(t *testing.T) {
	s := mustSelect(t, "select count(*) c, count(distinct R.A) d from R")
	if !s.Items[0].Expr.(*FuncE).Star {
		t.Fatal("count(*) broken")
	}
	if !s.Items[1].Expr.(*FuncE).Distinct {
		t.Fatal("count(distinct) broken")
	}
}

func TestParseQuotedIdent(t *testing.T) {
	s := mustSelect(t, `select R.A from R, "-" where R.B = "-".left`)
	bt := s.From[1].(*BaseTable)
	if bt.Name != "-" {
		t.Fatalf("quoted table = %q", bt.Name)
	}
	cmp := s.Where.(*Cmp)
	cr := cmp.R.(*ColRef)
	if cr.Table != "-" || cr.Column != "left" {
		t.Fatalf("quoted column ref = %+v", cr)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"select",
		"select R.A from",
		"select R.A from R where",
		"select R.A from (select S.A from S)",   // missing alias
		"select R.A from R where R.A in select", // missing paren
		"select R.A from R group",
		"select 'unterminated from R",
		"select R.A from R; extra",
		"select R.A from R where R.A ?",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseNegativeNumber(t *testing.T) {
	s := mustSelect(t, "select R.A from R where R.B = -5")
	cmp := s.Where.(*Cmp)
	if cmp.R.(*Lit).Val.AsInt() != -5 {
		t.Fatal("negative literal broken")
	}
}

func TestRoundTripPrinting(t *testing.T) {
	srcs := []string{
		"select R.A, sum(R.B) AS sm from R group by R.A",
		"select distinct R.A from R where R.A not in (select S.A from S)",
		"select R.m, S.n from R left join S on R.h = 11 and R.y = S.y",
		"select x.A from X x join lateral (select y.A from Y y where x.A < y.A) z on true",
		"select R.A from R union all select S.A from S",
		"select count(*) AS c from R having count(*) > 2",
	}
	for _, src := range srcs {
		q1, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		printed := q1.String()
		q2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse %q: %v", printed, err)
		}
		if q2.String() != printed {
			t.Errorf("print not stable:\n1: %s\n2: %s", printed, q2.String())
		}
	}
}

func TestLexerComments(t *testing.T) {
	s := mustSelect(t, "select R.A -- trailing comment\nfrom R")
	if len(s.Items) != 1 {
		t.Fatal("comment handling broken")
	}
}

func TestStringEscapes(t *testing.T) {
	s := mustSelect(t, "select R.A from R where R.name = 'O''Brien'")
	cmp := s.Where.(*Cmp)
	if cmp.R.(*Lit).Val.AsString() != "O'Brien" {
		t.Fatalf("escape = %q", cmp.R.(*Lit).Val.AsString())
	}
}

func TestOutNames(t *testing.T) {
	s := mustSelect(t, "select R.A, R.B + 1, R.C as z from R")
	if s.Items[0].OutName(0) != "A" || s.Items[1].OutName(1) != "col2" || s.Items[2].OutName(2) != "z" {
		t.Fatalf("out names: %q %q %q", s.Items[0].OutName(0), s.Items[1].OutName(1), s.Items[2].OutName(2))
	}
}

func TestStringsOfAST(t *testing.T) {
	srcs := map[string]string{
		"select R.A from R where exists (select 1 from S)": "EXISTS",
		"select R.A from R where R.A is not null":          "IS NOT NULL",
		"select R.A from R cross join S":                   "CROSS JOIN",
		"select R.A from R full join S on R.A = S.A":       "FULL JOIN",
		"select R.A from R where not (R.A = 1)":            "NOT (",
		"select count(distinct R.A) from R":                "count(DISTINCT",
	}
	for src, want := range srcs {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if !strings.Contains(q.String(), want) {
			t.Errorf("%q renders %q, missing %q", src, q.String(), want)
		}
	}
}

func TestParseWithRecursive(t *testing.T) {
	src := `with recursive tc(x, y) as (
		select E.s, E.t from E
		union
		select tc.x, E.t from tc, E where tc.y = E.s
	), top as (select tc.x from tc)
	select top.x from top`
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	w, ok := q.(*With)
	if !ok {
		t.Fatalf("parsed %T, want *With", q)
	}
	if !w.Recursive || len(w.CTEs) != 2 {
		t.Fatalf("recursive=%v ctes=%d", w.Recursive, len(w.CTEs))
	}
	if w.CTEs[0].Name != "tc" || len(w.CTEs[0].Cols) != 2 || w.CTEs[1].Name != "top" {
		t.Fatalf("CTE heads parsed wrong: %+v", w.CTEs)
	}
	base, step, all, rec, err := w.CTEs[0].SplitRecursive()
	if err != nil || !rec || all {
		t.Fatalf("split: rec=%v all=%v err=%v", rec, all, err)
	}
	if ReferencesTable(base, "tc") || !ReferencesTable(step, "tc") {
		t.Fatal("base/step reference split wrong")
	}
	if _, _, _, rec, _ = w.CTEs[1].SplitRecursive(); rec {
		t.Fatal("non-recursive CTE classified recursive")
	}
	// Round trip: the rendering parses back to the same rendering.
	again, err := Parse(q.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", q.String(), err)
	}
	if again.String() != q.String() {
		t.Fatalf("round trip drifted:\n%s\n%s", q.String(), again.String())
	}
}

func TestParseWithErrors(t *testing.T) {
	for _, src := range []string{
		"with as (select 1) select 1",                 // missing name
		"with x select 1",                             // missing AS
		"with x as select 1 from R",                   // missing parens
		"with recursive x() as (select 1) select x.a", // empty column list
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q parsed, want error", src)
		}
	}
}

func TestSplitRecursiveErrors(t *testing.T) {
	// Self-reference without UNION shape.
	q := MustParse("with recursive x as (select x.a from x) select x.a from x")
	if _, _, _, _, err := q.(*With).CTEs[0].SplitRecursive(); err == nil {
		t.Fatal("self-reference without UNION must error")
	}
	// Self-reference in the base term.
	q = MustParse("with recursive x as (select x.a from x union select R.A from R) select x.a from x")
	if _, _, _, _, err := q.(*With).CTEs[0].SplitRecursive(); err == nil {
		t.Fatal("self-reference in base term must error")
	}
}

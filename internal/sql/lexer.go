package sql

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokKind enumerates lexical token classes.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokKind
	text string // identifiers lower-cased; symbols literal; strings unquoted
	raw  string // original spelling (for identifiers)
	pos  int
}

// lexer tokenizes a SQL string. Keywords are just identifiers; the parser
// matches them case-insensitively.
type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.lexIdent()
		case c >= '0' && c <= '9':
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c == '"':
			if err := l.lexQuotedIdent(); err != nil {
				return nil, err
			}
		default:
			if err := l.lexSymbol(); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// -- line comments
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_' || r == '$'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '$'
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	raw := l.src[start:l.pos]
	l.toks = append(l.toks, token{kind: tokIdent, text: strings.ToLower(raw), raw: raw, pos: start})
}

func (l *lexer) lexQuotedIdent() error {
	start := l.pos
	l.pos++ // opening quote
	for l.pos < len(l.src) && l.src[l.pos] != '"' {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return fmt.Errorf("sql: unterminated quoted identifier at %d", start)
	}
	raw := l.src[start+1 : l.pos]
	l.pos++
	l.toks = append(l.toks, token{kind: tokIdent, text: strings.ToLower(raw), raw: raw, pos: start})
	return nil
}

func (l *lexer) lexNumber() error {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '.' {
			if seenDot {
				break
			}
			// Only a digit after the dot continues the number; "1." is 1 then dot.
			if l.pos+1 >= len(l.src) || l.src[l.pos+1] < '0' || l.src[l.pos+1] > '9' {
				break
			}
			seenDot = true
			l.pos++
			continue
		}
		if c < '0' || c > '9' {
			break
		}
		l.pos++
	}
	text := l.src[start:l.pos]
	if _, err := strconv.ParseFloat(text, 64); err != nil {
		return fmt.Errorf("sql: bad number %q at %d", text, start)
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: text, pos: start})
	return nil
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sql: unterminated string at %d", start)
}

func (l *lexer) lexSymbol() error {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<>", "<=", ">=", "!=":
		l.toks = append(l.toks, token{kind: tokSymbol, text: two, pos: l.pos})
		l.pos += 2
		return nil
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '.', '*', '+', '-', '/', '=', '<', '>', ';':
		l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: l.pos})
		l.pos++
		return nil
	}
	return fmt.Errorf("sql: unexpected character %q at %d", string(c), l.pos)
}

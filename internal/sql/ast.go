// Package sql implements the SQL subset the paper's examples use:
// SELECT [DISTINCT] with joins (inner, LEFT/FULL OUTER, CROSS, JOIN
// LATERAL), subqueries in FROM, WHERE with EXISTS / IN / NOT IN / IS NULL
// and scalar subqueries, GROUP BY / HAVING, aggregate functions, and
// UNION [ALL]. It provides the AST, a lexer, a recursive-descent parser,
// and a printer; evaluation lives in internal/sqleval and translation to
// ARC in internal/sql2arc.
package sql

import (
	"fmt"
	"strings"

	"repro/internal/value"
)

// Query is a SELECT or a UNION of queries.
type Query interface {
	isQuery()
	// String renders the query as SQL text.
	String() string
}

// With is a query with common table expressions: WITH [RECURSIVE]
// name [(cols)] AS (query), ... body. Each CTE is visible to the CTEs
// after it and to the body; under RECURSIVE a CTE of the form
// "base UNION [ALL] step" whose step references its own name is a
// recursive CTE (see SplitRecursive).
type With struct {
	Recursive bool
	CTEs      []CTE
	Body      Query
}

func (*With) isQuery() {}

// String renders "WITH [RECURSIVE] name [(cols)] AS (q), ... body".
func (w *With) String() string {
	var b strings.Builder
	b.WriteString("WITH ")
	if w.Recursive {
		b.WriteString("RECURSIVE ")
	}
	for i, c := range w.CTEs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		if len(c.Cols) > 0 {
			b.WriteString("(" + strings.Join(c.Cols, ", ") + ")")
		}
		b.WriteString(" AS (" + c.Query.String() + ")")
	}
	b.WriteString(" ")
	b.WriteString(w.Body.String())
	return b.String()
}

// CTE is one common table expression of a WITH query.
type CTE struct {
	Name string
	// Cols optionally renames the output columns.
	Cols  []string
	Query Query
}

// SplitRecursive splits a recursive CTE definition into its base and
// step terms. ok is false when the definition never references its own
// name (a plain CTE). A self-referencing definition must be
// "base UNION [ALL] step" with the reference in the step only; anything
// else is an error.
func (c CTE) SplitRecursive() (base, step Query, all, ok bool, err error) {
	if !ReferencesTable(c.Query, c.Name) {
		return nil, nil, false, false, nil
	}
	u, isUnion := c.Query.(*Union)
	if !isUnion {
		return nil, nil, false, false, fmt.Errorf("sql: recursive CTE %q must have the form 'base UNION [ALL] step'", c.Name)
	}
	if ReferencesTable(u.Left, c.Name) {
		return nil, nil, false, false, fmt.Errorf("sql: recursive CTE %q references itself in its non-recursive term", c.Name)
	}
	if !ReferencesTable(u.Right, c.Name) {
		return nil, nil, false, false, fmt.Errorf("sql: recursive CTE %q must reference itself in its recursive (right) term", c.Name)
	}
	return u.Left, u.Right, u.All, true, nil
}

// ReferencesTable reports whether q contains a base-table reference to
// name, anywhere: FROM items and join trees, derived tables, WHERE/ON/
// HAVING and select-item subqueries (EXISTS, IN, scalar), and nested
// WITH queries.
func ReferencesTable(q Query, name string) bool {
	found := false
	var walkQ func(Query)
	var walkRef func(TableRef)
	var walkE func(Expr)
	walkQ = func(q Query) {
		if found || q == nil {
			return
		}
		switch x := q.(type) {
		case *Union:
			walkQ(x.Left)
			walkQ(x.Right)
		case *With:
			for _, c := range x.CTEs {
				walkQ(c.Query)
			}
			walkQ(x.Body)
		case *Select:
			for _, f := range x.From {
				walkRef(f)
			}
			for _, it := range x.Items {
				walkE(it.Expr)
			}
			walkE(x.Where)
			for _, g := range x.GroupBy {
				walkE(g)
			}
			walkE(x.Having)
		}
	}
	walkRef = func(r TableRef) {
		if found {
			return
		}
		switch x := r.(type) {
		case *BaseTable:
			if x.Name == name {
				found = true
			}
		case *SubqueryTable:
			walkQ(x.Query)
		case *JoinRef:
			walkRef(x.Left)
			walkRef(x.Right)
			walkE(x.On)
		}
	}
	walkE = func(e Expr) {
		if found || e == nil {
			return
		}
		switch x := e.(type) {
		case *Cmp:
			walkE(x.L)
			walkE(x.R)
		case *AndE:
			for _, k := range x.Kids {
				walkE(k)
			}
		case *OrE:
			for _, k := range x.Kids {
				walkE(k)
			}
		case *NotE:
			walkE(x.Kid)
		case *IsNullE:
			walkE(x.Arg)
		case *BinE:
			walkE(x.L)
			walkE(x.R)
		case *FuncE:
			walkE(x.Arg)
		case *Exists:
			walkQ(x.Query)
		case *InE:
			walkE(x.Left)
			walkQ(x.Query)
		case *Scalar:
			walkQ(x.Query)
		}
	}
	walkQ(q)
	return found
}

// Union combines two queries; All keeps duplicates.
type Union struct {
	Left, Right Query
	All         bool
}

func (*Union) isQuery() {}

// String renders "left UNION [ALL] right".
func (u *Union) String() string {
	op := " UNION "
	if u.All {
		op = " UNION ALL "
	}
	return u.Left.String() + op + u.Right.String()
}

// Select is a single SELECT block.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef // comma-separated FROM items (each may be a join tree)
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	// OrderBy is presentation-level ordering over output column names
	// (the paper treats sorted lists as outside the flat relational
	// core, Section 5; internal/sqleval honours it via EvalOrdered).
	OrderBy []OrderItem
}

// OrderItem is one ORDER BY key: an output column name and direction.
type OrderItem struct {
	Col  string
	Desc bool
}

// String renders "col [DESC]".
func (o OrderItem) String() string {
	if o.Desc {
		return o.Col + " DESC"
	}
	return o.Col
}

func (*Select) isQuery() {}

// String renders the SELECT block.
func (s *Select) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.String())
	}
	if len(s.From) > 0 {
		b.WriteString(" FROM ")
		for i, f := range s.From {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(f.String())
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.String())
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING ")
		b.WriteString(s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.String())
		}
	}
	return b.String()
}

// SelectItem is one output expression with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// String renders "expr [AS alias]".
func (it SelectItem) String() string {
	s := it.Expr.String()
	if it.Alias != "" {
		s += " AS " + it.Alias
	}
	return s
}

// OutName is the output column name: the alias if present, the column
// name for bare column references, else a positional name.
func (it SelectItem) OutName(pos int) string {
	if it.Alias != "" {
		return it.Alias
	}
	if c, ok := it.Expr.(*ColRef); ok {
		return c.Column
	}
	return "col" + itoa(pos+1)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	neg := i < 0
	if neg {
		i = -i
	}
	var d [20]byte
	p := len(d)
	for i > 0 {
		p--
		d[p] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		p--
		d[p] = '-'
	}
	return string(d[p:])
}

// JoinKind enumerates join operators in FROM.
type JoinKind int

const (
	// JoinInner is INNER JOIN / JOIN.
	JoinInner JoinKind = iota
	// JoinLeft is LEFT [OUTER] JOIN.
	JoinLeft
	// JoinFull is FULL [OUTER] JOIN.
	JoinFull
	// JoinCross is CROSS JOIN (or JOIN LATERAL ... ON TRUE).
	JoinCross
)

// String renders the SQL join keyword.
func (k JoinKind) String() string {
	switch k {
	case JoinInner:
		return "JOIN"
	case JoinLeft:
		return "LEFT JOIN"
	case JoinFull:
		return "FULL JOIN"
	case JoinCross:
		return "CROSS JOIN"
	}
	return "JOIN?"
}

// TableRef is an item in FROM: a base table, a (possibly LATERAL)
// subquery, or a join of two refs.
type TableRef interface {
	isTableRef()
	String() string
}

// BaseTable references a named relation with an optional alias.
type BaseTable struct {
	Name  string
	Alias string
}

func (*BaseTable) isTableRef() {}

// String renders "name [alias]".
func (t *BaseTable) String() string {
	if t.Alias != "" && t.Alias != t.Name {
		return t.Name + " " + t.Alias
	}
	return t.Name
}

// Binding name is the alias if present, else the table name.
func (t *BaseTable) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// SubqueryTable is a derived table, optionally LATERAL.
type SubqueryTable struct {
	Query   Query
	Alias   string
	Lateral bool
}

func (*SubqueryTable) isTableRef() {}

// String renders "[LATERAL] (q) alias".
func (t *SubqueryTable) String() string {
	s := "(" + t.Query.String() + ")"
	if t.Lateral {
		s = "LATERAL " + s
	}
	if t.Alias != "" {
		s += " " + t.Alias
	}
	return s
}

// JoinRef joins two table refs with an ON condition (nil for CROSS).
type JoinRef struct {
	Kind        JoinKind
	Left, Right TableRef
	On          Expr
}

func (*JoinRef) isTableRef() {}

// String renders "left KIND right ON cond"; a condition-less non-cross
// join prints "ON true" (the lateral-join idiom of Fig 3a).
func (t *JoinRef) String() string {
	s := t.Left.String() + " " + t.Kind.String() + " " + t.Right.String()
	switch {
	case t.On != nil:
		s += " ON " + t.On.String()
	case t.Kind != JoinCross:
		s += " ON true"
	}
	return s
}

// Expr is a scalar or boolean SQL expression.
type Expr interface {
	isExpr()
	String() string
}

// ColRef is table.column (Table may be empty for unqualified columns).
type ColRef struct {
	Table  string
	Column string
}

func (*ColRef) isExpr() {}

// String renders "[table.]column".
func (c *ColRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

// Lit is a literal value.
type Lit struct {
	Val value.Value
}

func (*Lit) isExpr() {}

// String renders the literal.
func (l *Lit) String() string { return l.Val.String() }

// Param is a positional placeholder ($1, $2, …): a value supplied at
// execution time, so a query can be planned once and executed many times
// with different bindings. Indexes are 1-based, database/sql style.
type Param struct {
	Index int
}

func (*Param) isExpr() {}

// String renders "$n".
func (p *Param) String() string { return "$" + itoa(p.Index) }

// MaxParam returns the largest placeholder index used anywhere in q
// (0 when the query has none) — the number of arguments an execution
// must bind.
func MaxParam(q Query) int {
	max := 0
	Walk(q, nil, func(e Expr) {
		if p, ok := e.(*Param); ok && p.Index > max {
			max = p.Index
		}
	}, nil)
	return max
}

// Tables returns the distinct base-table names referenced anywhere in q
// (FROM items, join trees, subqueries, CTE definitions), in first-
// reference order. CTE names shadowing base tables are not subtracted,
// so callers using this for cache invalidation over-approximate.
func Tables(q Query) []string {
	var out []string
	seen := map[string]bool{}
	Walk(q, nil, nil, func(r TableRef) {
		if bt, ok := r.(*BaseTable); ok && !seen[bt.Name] {
			seen[bt.Name] = true
			out = append(out, bt.Name)
		}
	})
	return out
}

// Walk traverses every node of q — query blocks, expressions (descending
// into subqueries), and table references — calling the non-nil callbacks
// on each.
func Walk(q Query, fq func(Query), fe func(Expr), fr func(TableRef)) {
	var walkQ func(Query)
	var walkE func(Expr)
	var walkRef func(TableRef)
	walkE = func(e Expr) {
		if e == nil {
			return
		}
		if fe != nil {
			fe(e)
		}
		switch x := e.(type) {
		case *Cmp:
			walkE(x.L)
			walkE(x.R)
		case *AndE:
			for _, k := range x.Kids {
				walkE(k)
			}
		case *OrE:
			for _, k := range x.Kids {
				walkE(k)
			}
		case *NotE:
			walkE(x.Kid)
		case *IsNullE:
			walkE(x.Arg)
		case *BinE:
			walkE(x.L)
			walkE(x.R)
		case *FuncE:
			walkE(x.Arg)
		case *Exists:
			walkQ(x.Query)
		case *InE:
			walkE(x.Left)
			walkQ(x.Query)
		case *Scalar:
			walkQ(x.Query)
		}
	}
	walkRef = func(r TableRef) {
		if fr != nil {
			fr(r)
		}
		switch x := r.(type) {
		case *SubqueryTable:
			walkQ(x.Query)
		case *JoinRef:
			walkRef(x.Left)
			walkRef(x.Right)
			walkE(x.On)
		}
	}
	walkQ = func(q Query) {
		if q == nil {
			return
		}
		if fq != nil {
			fq(q)
		}
		switch x := q.(type) {
		case *Union:
			walkQ(x.Left)
			walkQ(x.Right)
		case *With:
			for _, c := range x.CTEs {
				walkQ(c.Query)
			}
			walkQ(x.Body)
		case *Select:
			for _, ref := range x.From {
				walkRef(ref)
			}
			for _, it := range x.Items {
				walkE(it.Expr)
			}
			walkE(x.Where)
			for _, g := range x.GroupBy {
				walkE(g)
			}
			walkE(x.Having)
		}
	}
	walkQ(q)
}

// Cmp is a binary comparison.
type Cmp struct {
	Op   value.CmpOp
	L, R Expr
}

func (*Cmp) isExpr() {}

// String renders "l op r".
func (c *Cmp) String() string { return c.L.String() + " " + c.Op.String() + " " + c.R.String() }

// AndE is conjunction.
type AndE struct{ Kids []Expr }

func (*AndE) isExpr() {}

// String renders "a AND b".
func (a *AndE) String() string { return joinExprs(a.Kids, " AND ") }

// OrE is disjunction.
type OrE struct{ Kids []Expr }

func (*OrE) isExpr() {}

// String renders "(a OR b)".
func (o *OrE) String() string { return "(" + joinExprs(o.Kids, " OR ") + ")" }

// NotE is negation.
type NotE struct{ Kid Expr }

func (*NotE) isExpr() {}

// String renders "NOT (kid)".
func (n *NotE) String() string { return "NOT (" + n.Kid.String() + ")" }

// Exists is [NOT] EXISTS (query).
type Exists struct {
	Query   Query
	Negated bool
}

func (*Exists) isExpr() {}

// String renders "[NOT ]EXISTS (q)".
func (e *Exists) String() string {
	s := "EXISTS (" + e.Query.String() + ")"
	if e.Negated {
		s = "NOT " + s
	}
	return s
}

// InE is "expr [NOT] IN (query)".
type InE struct {
	Left    Expr
	Query   Query
	Negated bool
}

func (*InE) isExpr() {}

// String renders "l [NOT ]IN (q)".
func (e *InE) String() string {
	op := " IN ("
	if e.Negated {
		op = " NOT IN ("
	}
	return e.Left.String() + op + e.Query.String() + ")"
}

// IsNullE is "expr IS [NOT] NULL".
type IsNullE struct {
	Arg     Expr
	Negated bool
}

func (*IsNullE) isExpr() {}

// String renders "arg IS [NOT] NULL".
func (e *IsNullE) String() string {
	if e.Negated {
		return e.Arg.String() + " IS NOT NULL"
	}
	return e.Arg.String() + " IS NULL"
}

// BinE is binary arithmetic (+ - * /).
type BinE struct {
	Op   rune // '+', '-', '*', '/'
	L, R Expr
}

func (*BinE) isExpr() {}

// String renders "(l op r)".
func (b *BinE) String() string {
	return "(" + b.L.String() + " " + string(b.Op) + " " + b.R.String() + ")"
}

// FuncE is an aggregate application: sum/avg/min/max/count, count(*),
// count(DISTINCT e).
type FuncE struct {
	Name     string // lower-cased
	Distinct bool
	Star     bool // count(*)
	Arg      Expr // nil when Star
}

func (*FuncE) isExpr() {}

// String renders "name([DISTINCT] arg)" or "count(*)".
func (f *FuncE) String() string {
	if f.Star {
		return f.Name + "(*)"
	}
	inner := ""
	if f.Distinct {
		inner = "DISTINCT "
	}
	return f.Name + "(" + inner + f.Arg.String() + ")"
}

// Scalar is a scalar subquery used as an expression.
type Scalar struct {
	Query Query
}

func (*Scalar) isExpr() {}

// String renders "(q)".
func (s *Scalar) String() string { return "(" + s.Query.String() + ")" }

func joinExprs(es []Expr, sep string) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = e.String()
	}
	return strings.Join(parts, sep)
}

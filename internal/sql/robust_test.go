package sql

import (
	"strings"
	"testing"
)

// TestParserNeverPanics: mangled SQL must error, never panic.
func TestParserNeverPanics(t *testing.T) {
	seeds := []string{
		"select R.A from R, S where R.B = S.B and S.C = 0",
		"select distinct R.A, (select sum(R2.B) sm from R R2 where R2.A = R.A) from R",
		"select R.m, S.n from R left outer join S on (R.h = 11 and R.y = S.y)",
		"select R.A from R where R.A not in (select S.A from S) order by A desc",
		"select R.A from R union all select S.A from S",
	}
	junk := []string{"", "(", ")", "select", "from", "select from where", "'",
		"select * from", "select ((((", "group by", ";;;", "select 1 order by"}
	var inputs []string
	inputs = append(inputs, junk...)
	for _, s := range seeds {
		for cut := 0; cut < len(s); cut += 4 {
			inputs = append(inputs, s[:cut])
		}
		inputs = append(inputs,
			strings.ReplaceAll(s, "select", "selec"),
			strings.ReplaceAll(s, "(", ""),
			strings.ReplaceAll(s, "=", "<>=<"),
			s+" "+s,
		)
	}
	for _, in := range inputs {
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Errorf("panic on %q: %v", in, p)
				}
			}()
			_, _ = Parse(in)
		}()
	}
}

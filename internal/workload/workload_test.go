package workload

import (
	"testing"

	"repro/internal/relation"
	"repro/internal/value"
)

func TestPaperInstances(t *testing.T) {
	r, s := CountBugInstance()
	if r.Card() != 1 || s.Card() != 0 {
		t.Error("count-bug instance wrong")
	}
	r2, s2 := ConventionInstance()
	if r2.Card() != 1 || s2.Card() != 0 {
		t.Error("convention instance wrong")
	}
	if Beers().Card() != 5 {
		t.Error("beers instance wrong")
	}
	er, es := Employees()
	if er.Card() != 5 || es.Card() != 5 {
		t.Error("employees instance wrong")
	}
}

func TestDeterminism(t *testing.T) {
	a := RandomBinary(Rand(42), "R", "A", "B", 50, 10, 10)
	b := RandomBinary(Rand(42), "R", "A", "B", 50, 10, 10)
	if !a.EqualBag(b) {
		t.Fatal("generators must be deterministic per seed")
	}
}

func TestRandomParentIsAcyclic(t *testing.T) {
	p := RandomParent(Rand(7), 20, 40)
	p.Each(func(tp relation.Tuple, _ int) {
		if tp[0].AsInt() >= tp[1].AsInt() {
			t.Fatalf("edge %v not forward", tp)
		}
	})
}

func TestChain(t *testing.T) {
	c := Chain(5)
	if c.Card() != 4 {
		t.Fatalf("chain(5) has %d edges", c.Card())
	}
}

func TestNullRate(t *testing.T) {
	r := RandomUnary(Rand(1), "S", "A", 200, 10, 0.5)
	nulls := 0
	r.Each(func(tp relation.Tuple, m int) {
		if tp[0].IsNull() {
			nulls += m
		}
	})
	if nulls < 50 || nulls > 150 {
		t.Fatalf("null rate off: %d/200", nulls)
	}
}

func TestMatMulReference(t *testing.T) {
	a := relation.New("A", "row", "col", "val").Add(0, 0, 1).Add(0, 1, 2)
	b := relation.New("B", "row", "col", "val").Add(0, 0, 3).Add(1, 0, 4)
	c := MatMulReference(a, b)
	// C[0][0] = 1*3 + 2*4 = 11.
	if !c.Contains(relation.Tuple{value.Int(0), value.Int(0), value.Int(11)}) {
		t.Fatalf("matmul reference wrong:\n%s", c)
	}
}

func TestCountBugRandomShapes(t *testing.T) {
	r, s := CountBugRandom(Rand(3), 30, 4)
	if r.Card() != 30 {
		t.Fatalf("R card = %d", r.Card())
	}
	// At least one id should have no S rows (that is the point).
	ids := map[int64]bool{}
	s.Each(func(tp relation.Tuple, _ int) { ids[tp[0].AsInt()] = true })
	if len(ids) == 30 {
		t.Fatal("expected some empty groups")
	}
}

func TestLikesRandom(t *testing.T) {
	l := LikesRandom(Rand(5), 6, 3)
	if l.Card() == 0 {
		t.Fatal("empty likes")
	}
	if l.Arity() != 2 {
		t.Fatal("bad schema")
	}
}

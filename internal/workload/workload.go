// Package workload generates the instances the experiment harness and
// benchmarks run on: the paper's concrete micro-instances (the COUNT-bug
// instance, the convention instance, the beers relation, the employee
// schema), plus seeded random generators for equivalence testing at
// scale (random binary relations, parent DAGs and cycles, sparse
// matrices, and NOT-IN instances with controlled NULL rates).
package workload

import (
	"math/rand"

	"repro/internal/relation"
	"repro/internal/value"
)

// Rand returns a deterministic source for a seed; experiments use fixed
// seeds so paper-vs-measured rows are reproducible.
func Rand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// CountBugInstance is the Section 3.2 instance: R(9,0), S empty.
func CountBugInstance() (*relation.Relation, *relation.Relation) {
	r := relation.New("R", "id", "q").Add(9, 0)
	s := relation.New("S", "id", "d")
	return r, s
}

// ConventionInstance is the Section 2.6 instance: R={(1,2)}, S=∅.
func ConventionInstance() (*relation.Relation, *relation.Relation) {
	r := relation.New("R", "ak", "b").Add(1, 2)
	s := relation.New("S", "a", "b")
	return r, s
}

// Beers is the unique-set instance: d1 and d2 share a beer set; d3 is
// unique.
func Beers() *relation.Relation {
	return relation.New("Likes", "drinker", "beer").
		Add("d1", "b1").Add("d1", "b2").
		Add("d2", "b1").Add("d2", "b2").
		Add("d3", "b1")
}

// Employees returns the Fig 6 schema: R(empl,dept), S(empl,sal).
func Employees() (*relation.Relation, *relation.Relation) {
	r := relation.New("R", "empl", "dept").
		Add("e1", "d1").Add("e2", "d1").Add("e3", "d2").Add("e4", "d3").Add("e5", "d3")
	s := relation.New("S", "empl", "sal").
		Add("e1", 60).Add("e2", 70).Add("e3", 40).Add("e4", 90).Add("e5", 30)
	return r, s
}

// RandomBinary generates a relation with n tuples over integer domains of
// the given sizes; duplicates occur naturally when domains are small.
func RandomBinary(rng *rand.Rand, name string, a1, a2 string, n, dom1, dom2 int) *relation.Relation {
	r := relation.New(name, a1, a2)
	for i := 0; i < n; i++ {
		r.Add(rng.Intn(dom1), rng.Intn(dom2))
	}
	return r
}

// RandomUnary generates a unary relation with n tuples over [0, dom), and
// nullRate (0..1) of additional NULL tuples.
func RandomUnary(rng *rand.Rand, name, attr string, n, dom int, nullRate float64) *relation.Relation {
	r := relation.New(name, attr)
	for i := 0; i < n; i++ {
		if rng.Float64() < nullRate {
			r.Insert(relation.Tuple{value.Null()})
			continue
		}
		r.Add(rng.Intn(dom))
	}
	return r
}

// RandomParent generates an acyclic parent relation over nodes 0..n-1
// with the given number of random forward edges (s < t), for recursion
// experiments.
func RandomParent(rng *rand.Rand, n, edges int) *relation.Relation {
	r := relation.New("P", "s", "t")
	for i := 0; i < edges; i++ {
		s := rng.Intn(n - 1)
		t := s + 1 + rng.Intn(n-s-1)
		r.Add(s, t)
	}
	return r
}

// Chain generates the path graph 0→1→…→n-1 whose transitive closure has
// n(n-1)/2 pairs — the stress instance for recursion benchmarks.
func Chain(n int) *relation.Relation {
	r := relation.New("P", "s", "t")
	for i := 0; i < n-1; i++ {
		r.Add(i, i+1)
	}
	return r
}

// SparseMatrix generates an n×n matrix in (row,col,val) form with the
// given fill fraction.
func SparseMatrix(rng *rand.Rand, name string, n int, fill float64) *relation.Relation {
	r := relation.New(name, "row", "col", "val")
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < fill {
				r.Add(i, j, 1+rng.Intn(9))
			}
		}
	}
	return r
}

// MatMulReference multiplies two sparse matrices directly (the baseline
// for E15), returning (row,col,val) with zero entries omitted.
func MatMulReference(a, b *relation.Relation) *relation.Relation {
	type key struct{ r, c int64 }
	acc := map[key]int64{}
	bByRow := map[int64][][2]int64{} // row → (col, val)
	b.Each(func(t relation.Tuple, _ int) {
		bByRow[t[0].AsInt()] = append(bByRow[t[0].AsInt()], [2]int64{t[1].AsInt(), t[2].AsInt()})
	})
	a.Each(func(t relation.Tuple, _ int) {
		ar, ac, av := t[0].AsInt(), t[1].AsInt(), t[2].AsInt()
		for _, bv := range bByRow[ac] {
			acc[key{ar, bv[0]}] += av * bv[1]
		}
	})
	out := relation.New("C", "row", "col", "val")
	for k, v := range acc {
		out.Add(k.r, k.c, v)
	}
	return out
}

// CountBugRandom generates R(id,q) and S(id,d) where some R ids have no S
// rows and some have exactly q matching rows — the instances on which
// COUNT-bug versions 1/3 return rows that version 2 loses.
func CountBugRandom(rng *rand.Rand, nIDs, maxD int) (*relation.Relation, *relation.Relation) {
	r := relation.New("R", "id", "q")
	s := relation.New("S", "id", "d")
	for id := 0; id < nIDs; id++ {
		d := rng.Intn(maxD + 1) // 0 rows possible
		q := d
		if rng.Float64() < 0.3 {
			q = rng.Intn(maxD + 1) // sometimes wrong on purpose
		}
		r.Add(id, q)
		for j := 0; j < d; j++ {
			s.Add(id, j)
		}
	}
	return r, s
}

// LikesRandom generates a Likes(drinker,beer) instance with nDrinkers
// drinkers choosing subsets of nBeers beers; small domains create shared
// beer sets for the unique-set query.
func LikesRandom(rng *rand.Rand, nDrinkers, nBeers int) *relation.Relation {
	r := relation.New("Likes", "drinker", "beer")
	for d := 0; d < nDrinkers; d++ {
		mask := 1 + rng.Intn(1<<nBeers-1)
		for b := 0; b < nBeers; b++ {
			if mask&(1<<b) != 0 {
				r.Add("d"+itoa(d), "b"+itoa(b))
			}
		}
	}
	return r
}

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return itoa(i/10) + string(rune('0'+i%10))
}

// Package storage is the durable backend behind relation.Store: a
// write-ahead log of committed write-set journals (length-prefixed,
// CRC-checksummed records, configurable fsync), periodic checkpoints as
// sorted immutable segment files keyed by the order-preserving binary
// encoding from internal/value, an LRU block cache over segment blocks,
// and crash recovery that loads the newest checkpoint and replays the
// log to the last valid record.
//
// On-disk layout under the storage directory:
//
//	CURRENT              names the active checkpoint directory
//	checkpoint-<gen>/    one numbered .seg file per relation
//	wal-<gen>.log        journal records for generations > <gen>
//
// codec.go holds the shared varint/tuple encoding used by both the WAL
// records and the segment blocks.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/relation"
	"repro/internal/value"
)

// ErrCorrupt wraps every malformed-bytes condition the decoders detect.
var ErrCorrupt = errors.New("storage: corrupt data")

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func takeUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad uvarint", ErrCorrupt)
	}
	return v, b[n:], nil
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func takeString(b []byte) (string, []byte, error) {
	n, rest, err := takeUvarint(b)
	if err != nil {
		return "", nil, err
	}
	if uint64(len(rest)) < n {
		return "", nil, fmt.Errorf("%w: short string", ErrCorrupt)
	}
	return string(rest[:n]), rest[n:], nil
}

// appendTuple encodes a tuple as a value count followed by the ordered
// encoding of each value — the same bytes that key segment entries, so
// one codec serves both surfaces.
func appendTuple(b []byte, t relation.Tuple) []byte {
	b = appendUvarint(b, uint64(len(t)))
	for _, v := range t {
		b = v.AppendOrdered(b)
	}
	return b
}

func takeTuple(b []byte) (relation.Tuple, []byte, error) {
	n, rest, err := takeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(rest)) { // each value takes >= 1 byte
		return nil, nil, fmt.Errorf("%w: tuple count %d exceeds payload", ErrCorrupt, n)
	}
	t := make(relation.Tuple, n)
	for i := range t {
		var v value.Value
		v, rest, err = value.DecodeOrdered(rest)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		t[i] = v
	}
	return t, rest, nil
}

func appendStrings(b []byte, ss []string) []byte {
	b = appendUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = appendString(b, s)
	}
	return b
}

func takeStrings(b []byte) ([]string, []byte, error) {
	n, rest, err := takeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(rest)) {
		return nil, nil, fmt.Errorf("%w: string count %d exceeds payload", ErrCorrupt, n)
	}
	out := make([]string, n)
	for i := range out {
		out[i], rest, err = takeString(rest)
		if err != nil {
			return nil, nil, err
		}
	}
	return out, rest, nil
}

// appendOp encodes one journaled operation.
func appendOp(b []byte, op relation.LogOp) []byte {
	b = append(b, byte(op.Kind))
	b = appendString(b, op.Rel)
	switch op.Kind {
	case relation.OpCreate:
		b = appendStrings(b, op.Attrs)
	case relation.OpDrop:
	case relation.OpInsert:
		b = appendTuple(b, op.Tuple)
		b = appendUvarint(b, uint64(op.Mult))
	case relation.OpDelete:
		b = appendUvarint(b, uint64(len(op.Tuples)))
		for _, t := range op.Tuples {
			b = appendTuple(b, t)
		}
	case relation.OpPut:
		b = appendStrings(b, op.Attrs)
		b = appendUvarint(b, uint64(len(op.Rows)))
		for i, t := range op.Rows {
			b = appendTuple(b, t)
			b = appendUvarint(b, uint64(op.Mults[i]))
		}
	}
	return b
}

func takeOp(b []byte) (relation.LogOp, []byte, error) {
	var op relation.LogOp
	if len(b) == 0 {
		return op, nil, fmt.Errorf("%w: empty op", ErrCorrupt)
	}
	op.Kind = relation.OpKind(b[0])
	var err error
	op.Rel, b, err = takeString(b[1:])
	if err != nil {
		return op, nil, err
	}
	switch op.Kind {
	case relation.OpCreate:
		op.Attrs, b, err = takeStrings(b)
	case relation.OpDrop:
	case relation.OpInsert:
		op.Tuple, b, err = takeTuple(b)
		if err == nil {
			var m uint64
			m, b, err = takeUvarint(b)
			op.Mult = int64(m)
		}
	case relation.OpDelete:
		var n uint64
		n, b, err = takeUvarint(b)
		if err == nil {
			if n > uint64(len(b)) {
				return op, nil, fmt.Errorf("%w: delete count %d exceeds payload", ErrCorrupt, n)
			}
			op.Tuples = make([]relation.Tuple, n)
			for i := range op.Tuples {
				op.Tuples[i], b, err = takeTuple(b)
				if err != nil {
					break
				}
			}
		}
	case relation.OpPut:
		op.Attrs, b, err = takeStrings(b)
		if err == nil {
			var n uint64
			n, b, err = takeUvarint(b)
			if err == nil {
				if n > uint64(len(b)) {
					return op, nil, fmt.Errorf("%w: put count %d exceeds payload", ErrCorrupt, n)
				}
				op.Rows = make([]relation.Tuple, n)
				op.Mults = make([]int64, n)
				for i := range op.Rows {
					op.Rows[i], b, err = takeTuple(b)
					if err != nil {
						break
					}
					var m uint64
					m, b, err = takeUvarint(b)
					if err != nil {
						break
					}
					op.Mults[i] = int64(m)
				}
			}
		}
	default:
		return op, nil, fmt.Errorf("%w: unknown op kind %d", ErrCorrupt, op.Kind)
	}
	if err != nil {
		return op, nil, err
	}
	return op, b, nil
}

// encodeRecord renders a WAL record payload: the commit generation and
// its journal.
func encodeRecord(gen uint64, ops []relation.LogOp) []byte {
	b := appendUvarint(nil, gen)
	b = appendUvarint(b, uint64(len(ops)))
	for _, op := range ops {
		b = appendOp(b, op)
	}
	return b
}

func decodeRecord(b []byte) (uint64, []relation.LogOp, error) {
	gen, rest, err := takeUvarint(b)
	if err != nil {
		return 0, nil, err
	}
	n, rest, err := takeUvarint(rest)
	if err != nil {
		return 0, nil, err
	}
	if n > uint64(len(rest))+1 {
		return 0, nil, fmt.Errorf("%w: op count %d exceeds payload", ErrCorrupt, n)
	}
	ops := make([]relation.LogOp, 0, n)
	for i := uint64(0); i < n; i++ {
		var op relation.LogOp
		op, rest, err = takeOp(rest)
		if err != nil {
			return 0, nil, err
		}
		ops = append(ops, op)
	}
	if len(rest) != 0 {
		return 0, nil, fmt.Errorf("%w: %d trailing bytes in record", ErrCorrupt, len(rest))
	}
	return gen, ops, nil
}

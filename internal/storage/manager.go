// manager.go ties the pieces together: Open recovers the catalog from
// the newest checkpoint plus WAL replay, Attach installs the write-ahead
// commit hook on a relation.Store, Checkpoint writes a full snapshot as
// segment files and rotates the log, Close flushes. One Manager owns one
// storage directory.
package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/relation"
)

// Options configures a Manager.
type Options struct {
	// Fsync makes every WAL append reach stable storage before the
	// commit is acknowledged — the kill -9 durability guarantee. Off, a
	// crash may lose the last few commits but never corrupts (replay
	// stops at the first torn record).
	Fsync bool
	// BlockCacheBytes bounds the shared segment block cache; 0 means
	// DefaultBlockCacheBytes.
	BlockCacheBytes int
}

// RecoveryStats describes what Open found and replayed.
type RecoveryStats struct {
	// CheckpointGen is the generation of the checkpoint loaded (0 when
	// none existed).
	CheckpointGen uint64
	// Gen is the recovered head generation after WAL replay.
	Gen uint64
	// Records is the number of WAL records replayed.
	Records uint64
	// Bytes is the number of WAL bytes replayed.
	Bytes int64
	// Relations is the catalog size after recovery.
	Relations int
	// Truncated reports whether a torn or corrupt WAL tail was
	// discarded.
	Truncated bool
	// Duration is the wall time recovery took.
	Duration time.Duration
}

// Stats is the manager's cumulative counter snapshot (see engine.DBStats
// and the server's Prometheus exposition).
type Stats struct {
	// WALRecords and WALBytes count records/bytes appended since Open.
	WALRecords uint64
	WALBytes   uint64
	// Checkpoints counts checkpoints written since Open; CheckpointGen
	// is the generation of the newest one (including one loaded at
	// recovery).
	Checkpoints   uint64
	CheckpointGen uint64
	// BlockCacheHits/Misses are the segment block cache counters.
	BlockCacheHits   uint64
	BlockCacheMisses uint64
	// RecoveryDuration is the wall time the last Open spent recovering.
	RecoveryDuration time.Duration
}

// Manager is the durable backend for one storage directory.
type Manager struct {
	dir   string
	opts  Options
	cache *BlockCache

	// mu guards the WAL writer (appends and rotation).
	mu  sync.Mutex
	wal *walWriter
	// walStart is the generation the active WAL file is named after:
	// it holds records for generations > walStart.
	walStart uint64

	// ckptMu serializes Checkpoint calls.
	ckptMu sync.Mutex
	store  *relation.Store

	recovered RecoveryStats
	segSeq    atomic.Uint64

	walRecords  atomic.Uint64
	walBytes    atomic.Uint64
	checkpoints atomic.Uint64
	ckptGen     atomic.Uint64
}

// Recovered is the result of Open: the catalog as of the last valid
// committed record, or Empty when the directory held no state (the
// caller seeds it and calls Bootstrap).
type Recovered struct {
	Rels  []*relation.Relation
	Gen   uint64
	Empty bool
	Stats RecoveryStats
}

const currentFile = "CURRENT"

func checkpointDirName(gen uint64) string { return fmt.Sprintf("checkpoint-%020d", gen) }
func walFileName(gen uint64) string       { return fmt.Sprintf("wal-%020d.log", gen) }

// parseGen extracts the generation from a "prefix-<gen>[suffix]" name.
func parseGen(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	g, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return g, true
}

// Open recovers the directory's state: load the checkpoint named by
// CURRENT (if any), then replay every WAL record with a later
// generation, truncating a torn tail. The returned manager is ready for
// Attach (existing state) or Bootstrap (fresh directory).
func Open(dir string, opts Options) (*Manager, *Recovered, error) {
	start := time.Now()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	m := &Manager{dir: dir, opts: opts, cache: NewBlockCache(opts.BlockCacheBytes)}
	rec := &Recovered{}

	// 1. Checkpoint.
	cat := map[string]*relation.Relation{}
	var ckptGen uint64
	if cur, err := os.ReadFile(filepath.Join(dir, currentFile)); err == nil {
		name := strings.TrimSpace(string(cur))
		g, ok := parseGen(name, "checkpoint-", "")
		if !ok {
			return nil, nil, fmt.Errorf("%w: bad CURRENT content %q", ErrCorrupt, name)
		}
		ckptGen = g
		ckptDir := filepath.Join(dir, name)
		ents, err := os.ReadDir(ckptDir)
		if err != nil {
			return nil, nil, fmt.Errorf("storage: checkpoint named by CURRENT missing: %w", err)
		}
		for _, e := range ents {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".seg") {
				continue
			}
			seg, err := openSegment(filepath.Join(ckptDir, e.Name()), m.segSeq.Add(1), m.cache)
			if err != nil {
				return nil, nil, err
			}
			r, err := seg.Relation()
			seg.close()
			if err != nil {
				return nil, nil, err
			}
			cat[r.Name()] = r
		}
	} else if !os.IsNotExist(err) {
		return nil, nil, err
	}

	// 2. WAL replay. Files are named wal-<gen>.log after the checkpoint
	// generation current at their creation; replay them in generation
	// order, skipping records at or below the loaded checkpoint.
	type walFile struct {
		gen  uint64
		path string
	}
	var wals []walFile
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range ents {
		if g, ok := parseGen(e.Name(), "wal-", ".log"); ok {
			wals = append(wals, walFile{gen: g, path: filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(wals, func(i, j int) bool { return wals[i].gen < wals[j].gen })

	gen := ckptGen
	stats := RecoveryStats{CheckpointGen: ckptGen}
	corrupt := false
	for i, w := range wals {
		if corrupt {
			// Everything after a corrupt tail is unreachable state;
			// discard so the append path starts clean.
			if err := os.Remove(w.path); err != nil {
				return nil, nil, err
			}
			continue
		}
		records, bytes, truncated, err := walReplay(w.path, true, func(g uint64, ops []relation.LogOp) error {
			if g <= ckptGen {
				return nil
			}
			for _, op := range ops {
				if err := relation.ApplyLogOp(cat, op); err != nil {
					return err
				}
			}
			if g > gen {
				gen = g
			}
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		stats.Records += records
		stats.Bytes += bytes
		if truncated {
			stats.Truncated = true
			corrupt = true
		}
		// The active WAL is the last surviving file.
		if i == len(wals)-1 || corrupt {
			m.walStart = w.gen
		}
	}

	fresh := ckptGen == 0 && len(wals) == 0
	if !fresh {
		if len(wals) == 0 {
			// Checkpoint but no WAL (e.g. deleted between checkpoints):
			// start a fresh log at the checkpoint generation.
			m.walStart = ckptGen
			w, err := createWAL(filepath.Join(dir, walFileName(ckptGen)), opts.Fsync)
			if err != nil {
				return nil, nil, err
			}
			m.wal = w
		} else {
			w, err := openWALForAppend(filepath.Join(dir, walFileName(m.walStart)), opts.Fsync)
			if err != nil {
				return nil, nil, err
			}
			m.wal = w
		}
	}

	stats.Gen = gen
	stats.Relations = len(cat)
	stats.Duration = time.Since(start)
	m.recovered = stats
	m.ckptGen.Store(ckptGen)

	rec.Gen = gen
	rec.Empty = fresh
	rec.Stats = stats
	for _, name := range sortedNames(cat) {
		rec.Rels = append(rec.Rels, cat[name])
	}
	return m, rec, nil
}

func sortedNames(cat map[string]*relation.Relation) []string {
	out := make([]string, 0, len(cat))
	for n := range cat {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Bootstrap initializes a fresh directory from the store's current head:
// it writes an initial checkpoint (making the seed durable) and starts
// the log. Call exactly once, only when Open reported Empty, before the
// store serves writers.
func (m *Manager) Bootstrap(st *relation.Store) error {
	m.store = st
	var snap *relation.Snapshot
	var hookErr error
	st.Barrier(func(head *relation.Snapshot) {
		snap = head
		m.mu.Lock()
		defer m.mu.Unlock()
		m.walStart = head.Gen()
		w, err := createWAL(filepath.Join(m.dir, walFileName(head.Gen())), m.opts.Fsync)
		if err != nil {
			hookErr = err
			return
		}
		m.wal = w
	})
	if hookErr != nil {
		return hookErr
	}
	if err := m.writeCheckpoint(snap); err != nil {
		return err
	}
	m.attachHook(st)
	return nil
}

// Attach installs the write-ahead commit hook on a store recovered from
// this directory. Call before the store serves writers.
func (m *Manager) Attach(st *relation.Store) {
	m.store = st
	m.attachHook(st)
}

func (m *Manager) attachHook(st *relation.Store) {
	st.SetCommitHook(func(gen uint64, ops []relation.LogOp) error {
		payload := encodeRecord(gen, ops)
		m.mu.Lock()
		defer m.mu.Unlock()
		if m.wal == nil {
			return fmt.Errorf("storage: manager closed")
		}
		n, err := m.wal.append(payload)
		if err != nil {
			return err
		}
		m.walRecords.Add(1)
		m.walBytes.Add(uint64(n))
		return nil
	})
}

// Checkpoint writes the current head as segment files, points CURRENT
// at them, and prunes the log: records at or below the checkpoint
// generation (and superseded checkpoints) are deleted. Safe to call
// concurrently with commits — the log rotates under the store's commit
// lock, so no record is lost or duplicated.
func (m *Manager) Checkpoint() error {
	m.ckptMu.Lock()
	defer m.ckptMu.Unlock()
	if m.store == nil {
		return fmt.Errorf("storage: no store attached")
	}
	var snap *relation.Snapshot
	var rotateErr error
	var rotated bool
	m.store.Barrier(func(head *relation.Snapshot) {
		m.mu.Lock()
		defer m.mu.Unlock()
		if head.Gen() == m.walStart {
			return // nothing committed since the last checkpoint
		}
		w, err := createWAL(filepath.Join(m.dir, walFileName(head.Gen())), m.opts.Fsync)
		if err != nil {
			rotateErr = err
			return
		}
		if m.wal != nil {
			m.wal.close()
		}
		m.wal = w
		m.walStart = head.Gen()
		snap = head
		rotated = true
	})
	if rotateErr != nil {
		return rotateErr
	}
	if !rotated {
		return nil
	}
	return m.writeCheckpoint(snap)
}

// writeCheckpoint renders snap as checkpoint-<gen>, flips CURRENT, and
// prunes obsolete checkpoints and WAL files.
func (m *Manager) writeCheckpoint(snap *relation.Snapshot) error {
	gen := snap.Gen()
	final := filepath.Join(m.dir, checkpointDirName(gen))
	tmp := final + ".tmp"
	if err := os.RemoveAll(tmp); err != nil {
		return err
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return err
	}
	names := snap.Names()
	for i, name := range names {
		if err := writeSegment(filepath.Join(tmp, fmt.Sprintf("%06d.seg", i)), snap.Relation(name)); err != nil {
			return err
		}
	}
	if err := os.RemoveAll(final); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	if err := syncDir(m.dir); err != nil {
		return err
	}
	// Flip CURRENT atomically.
	curTmp := filepath.Join(m.dir, currentFile+".tmp")
	if err := os.WriteFile(curTmp, []byte(checkpointDirName(gen)+"\n"), 0o644); err != nil {
		return err
	}
	if err := os.Rename(curTmp, filepath.Join(m.dir, currentFile)); err != nil {
		return err
	}
	if err := syncDir(m.dir); err != nil {
		return err
	}
	m.checkpoints.Add(1)
	m.ckptGen.Store(gen)

	// Prune: older checkpoints and WAL files fully covered by this one.
	ents, err := os.ReadDir(m.dir)
	if err != nil {
		return nil // pruning is best-effort
	}
	for _, e := range ents {
		if g, ok := parseGen(e.Name(), "checkpoint-", ""); ok && g < gen {
			os.RemoveAll(filepath.Join(m.dir, e.Name()))
		}
		if g, ok := parseGen(e.Name(), "wal-", ".log"); ok && g < gen {
			os.Remove(filepath.Join(m.dir, e.Name()))
		}
	}
	return nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Close flushes and closes the log. The store's hook is left in place
// but will refuse further commits.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.wal == nil {
		return nil
	}
	err := m.wal.close()
	m.wal = nil
	return err
}

// RecoveryStats returns what Open recovered.
func (m *Manager) RecoveryStats() RecoveryStats { return m.recovered }

// Stats snapshots the cumulative storage counters.
func (m *Manager) Stats() Stats {
	hits, misses := m.cache.Stats()
	return Stats{
		WALRecords:       m.walRecords.Load(),
		WALBytes:         m.walBytes.Load(),
		Checkpoints:      m.checkpoints.Load(),
		CheckpointGen:    m.ckptGen.Load(),
		BlockCacheHits:   hits,
		BlockCacheMisses: misses,
		RecoveryDuration: m.recovered.Duration,
	}
}

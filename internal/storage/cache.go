// cache.go implements the LRU block cache shared by all open segments:
// decoded blocks keyed by (segment id, block index), bounded by the
// approximate byte size of the raw blocks they were decoded from.
package storage

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// DefaultBlockCacheBytes is the cache budget used when Options leaves
// BlockCacheBytes zero.
const DefaultBlockCacheBytes = 16 << 20

type cacheKey struct {
	seg   uint64
	block int
}

type cacheItem struct {
	key  cacheKey
	ents []segEntry
	size int
}

// BlockCache is a byte-bounded LRU over decoded segment blocks. Safe
// for concurrent use; hit/miss counters feed the storage metrics.
type BlockCache struct {
	mu    sync.Mutex
	max   int
	used  int
	order *list.List // front = most recent; values are *cacheItem
	items map[cacheKey]*list.Element

	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewBlockCache builds a cache bounded to maxBytes (<=0 uses the
// default budget).
func NewBlockCache(maxBytes int) *BlockCache {
	if maxBytes <= 0 {
		maxBytes = DefaultBlockCacheBytes
	}
	return &BlockCache{
		max:   maxBytes,
		order: list.New(),
		items: make(map[cacheKey]*list.Element),
	}
}

func (c *BlockCache) get(seg uint64, block int) ([]segEntry, bool) {
	k := cacheKey{seg, block}
	c.mu.Lock()
	el, ok := c.items[k]
	if ok {
		c.order.MoveToFront(el)
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return el.Value.(*cacheItem).ents, true
}

func (c *BlockCache) put(seg uint64, block int, ents []segEntry, size int) {
	k := cacheKey{seg, block}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.order.MoveToFront(el)
		it := el.Value.(*cacheItem)
		c.used += size - it.size
		it.ents, it.size = ents, size
	} else {
		c.items[k] = c.order.PushFront(&cacheItem{key: k, ents: ents, size: size})
		c.used += size
	}
	for c.used > c.max && c.order.Len() > 1 {
		el := c.order.Back()
		it := el.Value.(*cacheItem)
		c.order.Remove(el)
		delete(c.items, it.key)
		c.used -= it.size
	}
}

// Stats returns the cumulative hit/miss counters.
func (c *BlockCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

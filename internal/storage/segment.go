// segment.go implements the checkpoint file format: one sorted
// immutable segment per relation. Entries are (ordered tuple key,
// multiplicity) pairs packed into ~4 KiB blocks; a sparse index block
// at the tail records each block's offset and first key, so a range
// scan binary-searches the index and reads only the blocks that can
// intersect [lo,hi). Layout:
//
//	magic "ARCSEG01"
//	data blocks: [keyLen uvarint][key][mult uvarint]*
//	index: name, attrs, rows, then per block (off, len, firstKey)
//	footer: [8-byte index offset][4-byte index CRC32]["ARCSEG01"]
package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"

	"repro/internal/relation"
	"repro/internal/value"
)

var segMagic = [8]byte{'A', 'R', 'C', 'S', 'E', 'G', '0', '1'}

// segBlockSize is the target uncompressed data-block size.
const segBlockSize = 4096

const segFooterSize = 8 + 4 + 8

// segEntry is one decoded block entry.
type segEntry struct {
	key  []byte
	tup  relation.Tuple
	mult int64
}

// writeSegment renders a relation into a sorted segment file at path.
func writeSegment(path string, r *relation.Relation) error {
	type kv struct {
		key  []byte
		mult int64
	}
	var rows []kv
	var total uint64
	r.Each(func(t relation.Tuple, m int) {
		var key []byte
		for _, v := range t {
			key = v.AppendOrdered(key)
		}
		rows = append(rows, kv{key: key, mult: int64(m)})
		total += uint64(m)
	})
	sort.Slice(rows, func(i, j int) bool { return bytes.Compare(rows[i].key, rows[j].key) < 0 })

	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	w := &countingWriter{w: f}
	if _, err := w.Write(segMagic[:]); err != nil {
		return err
	}

	type blockMeta struct {
		off      uint64
		length   uint32
		firstKey []byte
	}
	var blocks []blockMeta
	var cur []byte
	var curFirst []byte
	flush := func() error {
		if len(cur) == 0 {
			return nil
		}
		blocks = append(blocks, blockMeta{off: w.n, length: uint32(len(cur)), firstKey: curFirst})
		if _, err := w.Write(cur); err != nil {
			return err
		}
		cur, curFirst = nil, nil
		return nil
	}
	for _, e := range rows {
		if len(cur) == 0 {
			curFirst = e.key
		}
		cur = appendUvarint(cur, uint64(len(e.key)))
		cur = append(cur, e.key...)
		cur = appendUvarint(cur, uint64(e.mult))
		if len(cur) >= segBlockSize {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}

	indexOff := w.n
	idx := appendString(nil, r.Name())
	idx = appendStrings(idx, r.Attrs())
	idx = appendUvarint(idx, total)
	idx = appendUvarint(idx, uint64(len(blocks)))
	for _, b := range blocks {
		idx = appendUvarint(idx, b.off)
		idx = appendUvarint(idx, uint64(b.length))
		idx = appendUvarint(idx, uint64(len(b.firstKey)))
		idx = append(idx, b.firstKey...)
	}
	if _, err := w.Write(idx); err != nil {
		return err
	}
	var footer [segFooterSize]byte
	binary.BigEndian.PutUint64(footer[0:8], indexOff)
	binary.BigEndian.PutUint32(footer[8:12], crc32.ChecksumIEEE(idx))
	copy(footer[12:], segMagic[:])
	if _, err := w.Write(footer[:]); err != nil {
		return err
	}
	return f.Sync()
}

type countingWriter struct {
	w io.Writer
	n uint64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += uint64(n)
	return n, err
}

// segment is an open, immutable segment file: the sparse index lives in
// memory, data blocks are read on demand through the block cache.
type segment struct {
	f     *os.File
	id    uint64
	name  string
	attrs []string
	rows  uint64
	offs  []uint64
	lens  []uint32
	first [][]byte
	cache *BlockCache
}

// openSegment maps a segment file: it validates the footer, loads the
// sparse index, and leaves the file open for block reads.
func openSegment(path string, id uint64, cache *BlockCache) (*segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() < int64(len(segMagic)+segFooterSize) {
		f.Close()
		return nil, fmt.Errorf("%w: segment %s too short", ErrCorrupt, path)
	}
	var footer [segFooterSize]byte
	if _, err := f.ReadAt(footer[:], st.Size()-segFooterSize); err != nil {
		f.Close()
		return nil, err
	}
	if !bytes.Equal(footer[12:], segMagic[:]) {
		f.Close()
		return nil, fmt.Errorf("%w: segment %s bad footer magic", ErrCorrupt, path)
	}
	indexOff := binary.BigEndian.Uint64(footer[0:8])
	indexEnd := uint64(st.Size()) - segFooterSize
	if indexOff < uint64(len(segMagic)) || indexOff > indexEnd {
		f.Close()
		return nil, fmt.Errorf("%w: segment %s bad index offset", ErrCorrupt, path)
	}
	idx := make([]byte, indexEnd-indexOff)
	if _, err := f.ReadAt(idx, int64(indexOff)); err != nil {
		f.Close()
		return nil, err
	}
	if crc32.ChecksumIEEE(idx) != binary.BigEndian.Uint32(footer[8:12]) {
		f.Close()
		return nil, fmt.Errorf("%w: segment %s index checksum mismatch", ErrCorrupt, path)
	}
	s := &segment{f: f, id: id, cache: cache}
	rest := idx
	if s.name, rest, err = takeString(rest); err == nil {
		if s.attrs, rest, err = takeStrings(rest); err == nil {
			if s.rows, rest, err = takeUvarint(rest); err == nil {
				var nb uint64
				if nb, rest, err = takeUvarint(rest); err == nil {
					s.offs = make([]uint64, nb)
					s.lens = make([]uint32, nb)
					s.first = make([][]byte, nb)
					for i := uint64(0); i < nb && err == nil; i++ {
						var v, kl uint64
						if s.offs[i], rest, err = takeUvarint(rest); err != nil {
							break
						}
						if v, rest, err = takeUvarint(rest); err != nil {
							break
						}
						s.lens[i] = uint32(v)
						if kl, rest, err = takeUvarint(rest); err != nil {
							break
						}
						if kl > uint64(len(rest)) {
							err = fmt.Errorf("%w: index key overruns", ErrCorrupt)
							break
						}
						s.first[i] = append([]byte(nil), rest[:kl]...)
						rest = rest[kl:]
					}
				}
			}
		}
	}
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: segment %s index: %v", ErrCorrupt, path, err)
	}
	return s, nil
}

func (s *segment) close() error { return s.f.Close() }

// block returns the decoded entries of block i, via the cache.
func (s *segment) block(i int) ([]segEntry, error) {
	if ents, ok := s.cache.get(s.id, i); ok {
		return ents, nil
	}
	raw := make([]byte, s.lens[i])
	if _, err := s.f.ReadAt(raw, int64(s.offs[i])); err != nil {
		return nil, err
	}
	var ents []segEntry
	rest := raw
	for len(rest) > 0 {
		kl, r2, err := takeUvarint(rest)
		if err != nil {
			return nil, err
		}
		if kl > uint64(len(r2)) {
			return nil, fmt.Errorf("%w: block entry key overruns", ErrCorrupt)
		}
		key := r2[:kl:kl]
		tup, kr, err := decodeKeyTuple(key, len(s.attrs))
		if err != nil {
			return nil, err
		}
		if len(kr) != 0 {
			return nil, fmt.Errorf("%w: trailing key bytes", ErrCorrupt)
		}
		mult, r3, err := takeUvarint(r2[kl:])
		if err != nil {
			return nil, err
		}
		ents = append(ents, segEntry{key: key, tup: tup, mult: int64(mult)})
		rest = r3
	}
	s.cache.put(s.id, i, ents, len(raw))
	return ents, nil
}

// decodeKeyTuple decodes arity ordered values from key bytes.
func decodeKeyTuple(key []byte, arity int) (relation.Tuple, []byte, error) {
	t := make(relation.Tuple, arity)
	rest := key
	var err error
	for i := 0; i < arity; i++ {
		t[i], rest, err = value.DecodeOrdered(rest)
		if err != nil {
			return nil, nil, err
		}
	}
	return t, rest, nil
}

// Relation materializes the whole segment as an in-memory relation —
// the recovery path.
func (s *segment) Relation() (*relation.Relation, error) {
	r := relation.New(s.name, s.attrs...)
	for i := range s.offs {
		ents, err := s.block(i)
		if err != nil {
			return nil, err
		}
		for _, e := range ents {
			r.InsertMult(e.tup, int(e.mult))
		}
	}
	return r, nil
}

// Range calls f for each entry whose key lies in [lo, hi) (nil lo means
// unbounded below, nil hi unbounded above), in key order. Only blocks
// whose key range intersects the bounds are read.
func (s *segment) Range(lo, hi []byte, f func(relation.Tuple, int64) bool) error {
	if len(s.offs) == 0 {
		return nil
	}
	start := 0
	if lo != nil {
		// Last block whose first key is <= lo could contain lo.
		start = sort.Search(len(s.first), func(i int) bool { return bytes.Compare(s.first[i], lo) > 0 })
		if start > 0 {
			start--
		}
	}
	for i := start; i < len(s.offs); i++ {
		if hi != nil && bytes.Compare(s.first[i], hi) >= 0 {
			return nil
		}
		ents, err := s.block(i)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if lo != nil && bytes.Compare(e.key, lo) < 0 {
				continue
			}
			if hi != nil && bytes.Compare(e.key, hi) >= 0 {
				return nil
			}
			if !f(e.tup, e.mult) {
				return nil
			}
		}
	}
	return nil
}

// wal.go implements the write-ahead log file: an 8-byte magic header
// followed by records of the form
//
//	[4-byte big-endian payload length][4-byte IEEE CRC32 of payload][payload]
//
// Appends happen under the store's commit lock (write-ahead of the head
// swap); replay walks records in order and stops at the first torn or
// corrupt one, truncating the file back to the last valid record so the
// next append continues from a clean tail.
package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/relation"
)

var walMagic = [8]byte{'A', 'R', 'C', 'W', 'A', 'L', '0', '1'}

// maxRecordBytes bounds a single record; a length prefix beyond it is
// treated as corruption rather than an allocation request.
const maxRecordBytes = 1 << 30

// walWriter appends records to one WAL file.
type walWriter struct {
	f     *os.File
	path  string
	fsync bool
}

// createWAL creates (or truncates) a WAL file with a fresh magic header.
func createWAL(path string, fsync bool) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(walMagic[:]); err != nil {
		f.Close()
		return nil, err
	}
	if fsync {
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return &walWriter{f: f, path: path, fsync: fsync}, nil
}

// openWALForAppend opens an existing (already validated and truncated)
// WAL file positioned at its end.
func openWALForAppend(path string, fsync bool) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &walWriter{f: f, path: path, fsync: fsync}, nil
}

// append writes one record and returns the bytes appended. When fsync
// is on, the record is on stable storage before append returns — the
// durability point a committed transaction is acknowledged at.
func (w *walWriter) append(payload []byte) (int, error) {
	rec := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(payload))
	copy(rec[8:], payload)
	if _, err := w.f.Write(rec); err != nil {
		return 0, fmt.Errorf("storage: wal append: %w", err)
	}
	if w.fsync {
		if err := w.f.Sync(); err != nil {
			return 0, fmt.Errorf("storage: wal fsync: %w", err)
		}
	}
	return len(rec), nil
}

func (w *walWriter) close() error {
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// walReplay reads every valid record of a WAL file in order, calling fn
// per record. It returns the number of records delivered, the bytes
// read, and whether a torn/corrupt tail was found; when truncate is
// set, such a tail is cut off so the file ends at the last valid
// record. A missing or short magic header counts as a fully corrupt
// file (zero records).
func walReplay(path string, truncate bool, fn func(gen uint64, ops []relation.LogOp) error) (records uint64, bytes int64, truncated bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, false, err
	}
	defer f.Close()

	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil || magic != walMagic {
		if truncate {
			return 0, 0, true, os.Truncate(path, 0)
		}
		return 0, 0, true, nil
	}
	valid := int64(len(walMagic))
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			break // clean EOF or torn header: stop at last valid record
		}
		n := binary.BigEndian.Uint32(hdr[0:4])
		sum := binary.BigEndian.Uint32(hdr[4:8])
		if n > maxRecordBytes {
			break
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			break
		}
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		gen, ops, derr := decodeRecord(payload)
		if derr != nil {
			break
		}
		if fn != nil {
			if err := fn(gen, ops); err != nil {
				return records, bytes, false, err
			}
		}
		records++
		bytes += int64(8 + n)
		valid += int64(8 + n)
	}
	end, serr := f.Seek(0, io.SeekEnd)
	if serr == nil && end != valid {
		truncated = true
		if truncate {
			if err := os.Truncate(path, valid); err != nil {
				return records, bytes, true, err
			}
		}
	}
	return records, bytes, truncated, nil
}

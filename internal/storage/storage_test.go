package storage

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/relation"
	"repro/internal/value"
)

func tup(vals ...any) relation.Tuple {
	t := make(relation.Tuple, len(vals))
	for i, v := range vals {
		t[i] = relation.Lift(v)
	}
	return t
}

func TestRecordCodecRoundTrip(t *testing.T) {
	ops := []relation.LogOp{
		{Kind: relation.OpCreate, Rel: "t", Attrs: []string{"a", "b"}},
		{Kind: relation.OpInsert, Rel: "t", Tuple: tup(1, "x"), Mult: 3},
		{Kind: relation.OpDelete, Rel: "t", Tuples: []relation.Tuple{tup(1, "x"), tup(nil, 2.5)}},
		{Kind: relation.OpDrop, Rel: "t"},
		{Kind: relation.OpPut, Rel: "u", Attrs: []string{"c"},
			Rows: []relation.Tuple{tup(true), tup("s")}, Mults: []int64{1, 7}},
	}
	payload := encodeRecord(42, ops)
	gen, got, err := decodeRecord(payload)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 42 || len(got) != len(ops) {
		t.Fatalf("gen=%d ops=%d", gen, len(got))
	}
	for i, op := range got {
		want := ops[i]
		if op.Kind != want.Kind || op.Rel != want.Rel {
			t.Fatalf("op %d: %+v vs %+v", i, op, want)
		}
	}
	if got[1].Mult != 3 || got[1].Tuple.Key() != tup(1, "x").Key() {
		t.Fatalf("insert op mismatch: %+v", got[1])
	}
}

func TestWALAppendReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal-1.log")
	w, err := createWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	for gen := uint64(2); gen <= 5; gen++ {
		ops := []relation.LogOp{{Kind: relation.OpInsert, Rel: "t", Tuple: tup(int(gen)), Mult: 1}}
		if _, err := w.append(encodeRecord(gen, ops)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	var gens []uint64
	records, _, truncated, err := walReplay(path, true, func(g uint64, ops []relation.LogOp) error {
		gens = append(gens, g)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if records != 4 || truncated {
		t.Fatalf("records=%d truncated=%v", records, truncated)
	}
	for i, g := range gens {
		if g != uint64(i+2) {
			t.Fatalf("gens = %v", gens)
		}
	}
}

// A torn tail (partial record) must be discarded; the prefix survives.
func TestWALTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal-1.log")
	w, _ := createWAL(path, false)
	for gen := uint64(2); gen <= 4; gen++ {
		if _, err := w.append(encodeRecord(gen, []relation.LogOp{{Kind: relation.OpDrop, Rel: "x"}})); err != nil {
			t.Fatal(err)
		}
	}
	w.close()
	full, _ := os.ReadFile(path)
	// Cut mid-way through the last record.
	if err := os.WriteFile(path, full[:len(full)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	records, _, truncated, err := walReplay(path, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if records != 2 || !truncated {
		t.Fatalf("records=%d truncated=%v, want 2 true", records, truncated)
	}
	// After truncation the file replays cleanly.
	records, _, truncated, err = walReplay(path, true, nil)
	if err != nil || records != 2 || truncated {
		t.Fatalf("post-truncate: records=%d truncated=%v err=%v", records, truncated, err)
	}
}

// A flipped CRC byte invalidates that record and everything after it.
func TestWALFlippedCRC(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal-1.log")
	w, _ := createWAL(path, false)
	var offsets []int64
	off := int64(len(walMagic))
	for gen := uint64(2); gen <= 5; gen++ {
		n, err := w.append(encodeRecord(gen, []relation.LogOp{{Kind: relation.OpDrop, Rel: "x"}}))
		if err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, off)
		off += int64(n)
	}
	w.close()
	full, _ := os.ReadFile(path)
	full[offsets[2]+5] ^= 0xFF // corrupt record 3's CRC
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	records, _, truncated, err := walReplay(path, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if records != 2 || !truncated {
		t.Fatalf("records=%d truncated=%v, want 2 true", records, truncated)
	}
	if st, _ := os.Stat(path); st.Size() != offsets[2] {
		t.Fatalf("file size %d, want truncated to %d", st.Size(), offsets[2])
	}
}

func TestSegmentRoundTripAndRange(t *testing.T) {
	r := relation.New("t", "k", "v")
	for i := 0; i < 1000; i++ {
		r.Add(i, i*2)
	}
	r.Add(5, 10) // mult bump
	dir := t.TempDir()
	path := filepath.Join(dir, "t.seg")
	if err := writeSegment(path, r); err != nil {
		t.Fatal(err)
	}
	cache := NewBlockCache(0)
	seg, err := openSegment(path, 1, cache)
	if err != nil {
		t.Fatal(err)
	}
	defer seg.close()
	if seg.name != "t" || len(seg.attrs) != 2 {
		t.Fatalf("meta: %q %v", seg.name, seg.attrs)
	}
	if len(seg.offs) < 2 {
		t.Fatalf("expected multiple blocks, got %d", len(seg.offs))
	}

	got, err := seg.Relation()
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualBag(r) {
		t.Fatal("segment round trip diverged")
	}

	// Range [100, 110): keys are (k,v) tuples; bound on first column.
	lo := value.Int(100).AppendOrderedPrefix(nil)
	hi := value.Int(110).AppendOrderedPrefix(nil)
	var ks []int64
	if err := seg.Range(lo, hi, func(t relation.Tuple, m int64) bool {
		ks = append(ks, t[0].AsInt())
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(ks) != 10 || ks[0] != 100 || ks[9] != 109 {
		t.Fatalf("range got %v", ks)
	}

	// Cache: re-reading the same range should hit.
	h0, m0 := cache.Stats()
	if err := seg.Range(lo, hi, func(relation.Tuple, int64) bool { return true }); err != nil {
		t.Fatal(err)
	}
	h1, m1 := cache.Stats()
	if h1 <= h0 || m1 != m0 {
		t.Fatalf("expected pure cache hits: hits %d->%d misses %d->%d", h0, h1, m0, m1)
	}
}

func TestSegmentEmptyRelation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "e.seg")
	if err := writeSegment(path, relation.New("empty", "a", "b", "c")); err != nil {
		t.Fatal(err)
	}
	seg, err := openSegment(path, 1, NewBlockCache(0))
	if err != nil {
		t.Fatal(err)
	}
	defer seg.close()
	r, err := seg.Relation()
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "empty" || r.Arity() != 3 || r.Card() != 0 {
		t.Fatalf("empty segment: %s/%d/%d", r.Name(), r.Arity(), r.Card())
	}
}

// End-to-end: bootstrap a fresh dir, commit through the store, reopen
// and verify every committed generation is intact; then checkpoint,
// commit more, reopen again.
func TestManagerCommitRecoverCheckpoint(t *testing.T) {
	dir := t.TempDir()

	// Fresh open + bootstrap.
	m, rec, err := Open(dir, Options{Fsync: false})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Empty {
		t.Fatal("fresh dir not Empty")
	}
	seed := relation.New("t", "k", "v")
	seed.Add(0, "seed")
	st := relation.NewStore(seed)
	if err := m.Bootstrap(st); err != nil {
		t.Fatal(err)
	}
	commit := func(st *relation.Store, k int, v string) {
		ws := st.Begin()
		if err := ws.Insert("t", tup(k, v), 1); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Commit(ws); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 10; i++ {
		commit(st, i, "w")
	}
	// Also exercise create/drop through the journal.
	ws := st.Begin()
	if err := ws.Create("u", []string{"x"}); err != nil {
		t.Fatal(err)
	}
	if err := ws.Insert("u", tup(99), 2); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Commit(ws); err != nil {
		t.Fatal(err)
	}
	wantGen := st.Gen()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: replay only (no checkpoint beyond bootstrap).
	m2, rec2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Empty {
		t.Fatal("reopen found nothing")
	}
	if rec2.Gen != wantGen {
		t.Fatalf("recovered gen %d, want %d", rec2.Gen, wantGen)
	}
	st2 := relation.NewStoreAt(rec2.Gen, rec2.Rels...)
	m2.Attach(st2)
	if got := st2.Head().Relation("t").Card(); got != 11 {
		t.Fatalf("t has %d rows, want 11", got)
	}
	if got := st2.Head().Relation("u").Card(); got != 2 {
		t.Fatalf("u has %d rows, want 2", got)
	}

	// Checkpoint, commit more, close, reopen: replay starts after the
	// checkpoint.
	if err := m2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s := m2.Stats()
	if s.Checkpoints != 1 || s.CheckpointGen != st2.Gen() {
		t.Fatalf("stats after checkpoint: %+v", s)
	}
	commit(st2, 100, "after-ckpt")
	wantGen2 := st2.Gen()
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}

	m3, rec3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m3.Close()
	if rec3.Gen != wantGen2 {
		t.Fatalf("recovered gen %d, want %d", rec3.Gen, wantGen2)
	}
	if rec3.Stats.CheckpointGen == 0 || rec3.Stats.Records != 1 {
		t.Fatalf("expected checkpoint + exactly 1 replayed record, got %+v", rec3.Stats)
	}
	st3 := relation.NewStoreAt(rec3.Gen, rec3.Rels...)
	if got := st3.Head().Relation("t").Card(); got != 12 {
		t.Fatalf("t has %d rows, want 12", got)
	}
}

// A checkpoint with no intervening commits is a no-op.
func TestManagerCheckpointNoop(t *testing.T) {
	dir := t.TempDir()
	m, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	st := relation.NewStore(relation.New("t", "a"))
	if err := m.Bootstrap(st); err != nil {
		t.Fatal(err)
	}
	// Bootstrap wrote the initial checkpoint; an idle Checkpoint call
	// must not write another.
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if s := m.Stats(); s.Checkpoints != 1 {
		t.Fatalf("no-op checkpoint wrote: %+v", s)
	}
}

package qgen

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/arc"
	"repro/internal/convention"
	"repro/internal/datalog"
	"repro/internal/eval"
	"repro/internal/fixpoint"
	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/sqleval"
	"repro/internal/workload"
)

// TestRecursiveCTEDifferential extends the plan-vs-reference methodology
// to recursion: randomized WITH RECURSIVE queries (transitive closure,
// same-generation, depth-bounded walks; UNION and UNION ALL) evaluated
// through the fixpoint-engine plan path and the independent
// naive-iteration reference must return byte-identical relations.
func TestRecursiveCTEDifferential(t *testing.T) {
	const trials = 400
	rng := rand.New(rand.NewSource(77))
	planned := 0
	for i := 0; i < trials; i++ {
		schema := RandomInstance(rng, 15+rng.Intn(15), i%4 == 0)
		src := GenerateRecursive(rng)
		q, err := sql.Parse(src)
		if err != nil {
			t.Fatalf("generated query does not parse: %v\n%s", err, src)
		}
		db := sqleval.NewDB(schema.Relations()...)
		ref, refErr := sqleval.EvalMode(q, db, sqleval.PlanOff)
		pl, plErr := sqleval.EvalMode(q, db, sqleval.PlanForce)
		if plErr != nil {
			t.Fatalf("recursive corpus query fell out of the planner fragment: %v\n%s", plErr, src)
		}
		if refErr != nil {
			t.Fatalf("reference failed where planner succeeded: %v\n%s", refErr, src)
		}
		planned++
		if ref.String() != pl.String() {
			t.Fatalf("plan vs reference diverge on\n%s\nreference:\n%s\nplanned:\n%s", src, ref, pl)
		}
	}
	if planned != trials {
		t.Fatalf("planned %d/%d recursive queries", planned, trials)
	}
}

// TestThreeWayTransitiveClosure pins the acceptance criterion: the same
// 50-node-chain transitive closure expressed in SQL (WITH RECURSIVE),
// ARC (recursive collection), and Datalog returns byte-identical
// relations once normalized to a common name and attribute list.
func TestThreeWayTransitiveClosure(t *testing.T) {
	p := workload.Chain(50)

	// SQL front end.
	sqlOut, err := sqleval.EvalString(
		`with recursive tc(s, t) as (
			select P.s, P.t from P
			union
			select tc.s, P.t from tc, P where tc.t = P.s
		) select tc.s, tc.t from tc`, sqleval.NewDB(p))
	if err != nil {
		t.Fatal(err)
	}

	// ARC front end.
	col := arc.MustParseCollection(
		"{A(s, t) | ∃p ∈ P [A.s = p.s ∧ A.t = p.t] ∨ ∃p ∈ P, a2 ∈ A [A.s = p.s ∧ p.t = a2.s ∧ A.t = a2.t]}")
	arcOut, err := eval.Eval(col, eval.NewCatalog().AddRelation(p), convention.SetLogic())
	if err != nil {
		t.Fatal(err)
	}

	// Datalog front end.
	prog := datalog.MustParse("A(x,y) :- P(x,y). A(x,y) :- P(x,z), A(z,y).")
	dlOut, err := datalog.EvalPredicate(prog, datalog.EDB{"P": p}, "A")
	if err != nil {
		t.Fatal(err)
	}

	want := sqlOut.Rename("tc", []string{"s", "t"}).String()
	if got := arcOut.Rename("tc", []string{"s", "t"}).String(); got != want {
		t.Fatalf("ARC TC diverges from SQL TC\nSQL:\n%s\nARC:\n%s", want, got)
	}
	if got := dlOut.Rename("tc", []string{"s", "t"}).String(); got != want {
		t.Fatalf("Datalog TC diverges from SQL TC\nSQL:\n%s\nDatalog:\n%s", want, got)
	}
	// Chain(50) has 50 nodes and 49 edges: 49·50/2 reachable pairs.
	if n := 49 * 50 / 2; sqlOut.Distinct() != n {
		t.Fatalf("TC over chain(50): %d tuples, want %d", sqlOut.Distinct(), n)
	}
}

// TestRecursiveCTETerminationGuards pins the runaway-recursion behaviour
// on both execution paths: a UNION ALL step over a cyclic instance keeps
// deriving rows forever, and both the planner's fixpoint engine and the
// reference naive loop must surface a clear iteration-cap error rather
// than hang.
func TestRecursiveCTETerminationGuards(t *testing.T) {
	cyc := relation.New("E", "s", "t").Add(0, 1).Add(1, 0)
	db := sqleval.NewDB(cyc)
	q := sql.MustParse(`with recursive w(s, t) as (
		select E.s, E.t from E
		union all
		select w.s, E.t from w, E where w.t = E.s
	) select w.s, w.t from w`)

	savedEngine := fixpoint.DefaultMaxCTEIterations
	savedRef := sqleval.MaxRecursiveIterations
	fixpoint.DefaultMaxCTEIterations = 40
	sqleval.MaxRecursiveIterations = 40
	defer func() {
		fixpoint.DefaultMaxCTEIterations = savedEngine
		sqleval.MaxRecursiveIterations = savedRef
	}()

	if _, err := sqleval.EvalMode(q, db, sqleval.PlanForce); !errors.Is(err, fixpoint.ErrIterationCap) {
		t.Fatalf("plan path: got %v, want ErrIterationCap", err)
	}
	if _, err := sqleval.EvalMode(q, db, sqleval.PlanOff); err == nil {
		t.Fatal("reference path: cyclic UNION ALL must error, not loop")
	} else if want := "did not converge"; !strings.Contains(err.Error(), want) {
		t.Fatalf("reference path error %q does not mention %q", err, want)
	}

	// The same shape under UNION terminates: set accumulation saturates.
	uq := sql.MustParse(`with recursive w(s, t) as (
		select E.s, E.t from E
		union
		select w.s, E.t from w, E where w.t = E.s
	) select w.s, w.t from w`)
	for _, mode := range []sqleval.PlanMode{sqleval.PlanForce, sqleval.PlanOff} {
		out, err := sqleval.EvalMode(uq, db, mode)
		if err != nil {
			t.Fatalf("UNION over cycle (mode %d): %v", mode, err)
		}
		if out.Distinct() != 4 {
			t.Fatalf("UNION over 2-cycle: %d tuples, want 4", out.Distinct())
		}
	}
}

package qgen

import (
	"strings"
	"testing"

	"repro/internal/alt"
	"repro/internal/arc2sql"
	"repro/internal/convention"
	"repro/internal/eval"
	"repro/internal/sql2arc"
	"repro/internal/sqleval"
	"repro/internal/workload"
)

func renderBack(col *alt.Collection) (string, error) {
	return arc2sql.RenderString(col)
}

// TestDifferentialSQLvsARC is the pipeline property test: hundreds of
// random SQL queries must evaluate identically through (a) the
// independent SQL reference evaluator and (b) sql2arc translation + the
// ARC evaluator under SQL conventions. This mechanizes the Section 5
// coverage goal for the supported fragment.
func TestDifferentialSQLvsARC(t *testing.T) {
	const trials = 400
	rng := workload.Rand(20260612)
	bugs := 0
	for i := 0; i < trials; i++ {
		src := Generate(rng)
		inst := RandomInstance(rng, 12, i%3 == 0)
		db := sqleval.DB{}
		cat := eval.NewCatalog()
		for _, r := range inst.Relations() {
			db[r.Name()] = r
			cat.AddRelation(r)
		}
		want, err := sqleval.EvalString(src, db)
		if err != nil {
			t.Fatalf("trial %d: reference evaluator rejected generated query %q: %v", i, src, err)
		}
		col, err := sql2arc.TranslateString(src)
		if err != nil {
			t.Fatalf("trial %d: sql2arc rejected generated query %q: %v", i, src, err)
		}
		got, err := eval.Eval(col, cat, convention.SQL())
		if err != nil {
			t.Fatalf("trial %d: ARC evaluator failed on %q: %v\nALT: %s", i, src, err, col)
		}
		if !got.EqualBag(want) {
			bugs++
			t.Errorf("trial %d: divergence on %q\nsql:\n%s\narc:\n%s", i, src, want, got)
			if bugs > 3 {
				t.Fatal("stopping after 4 divergences")
			}
		}
	}
}

// TestDifferentialRoundTrip adds the third leg: ARC → SQL rendering must
// also agree (set-level, since flattening is set-exact).
func TestDifferentialRoundTrip(t *testing.T) {
	const trials = 150
	rng := workload.Rand(777)
	for i := 0; i < trials; i++ {
		src := Generate(rng)
		inst := RandomInstance(rng, 10, false)
		db := sqleval.DB{}
		for _, r := range inst.Relations() {
			db[r.Name()] = r
		}
		want, err := sqleval.EvalString(src, db)
		if err != nil {
			t.Fatalf("trial %d: %q: %v", i, src, err)
		}
		col, err := sql2arc.TranslateString(src)
		if err != nil {
			t.Fatalf("trial %d: %q: %v", i, src, err)
		}
		rendered, err := renderBack(col)
		if err != nil {
			// Renderer limitations (documented) are acceptable; skip.
			continue
		}
		got, err := sqleval.EvalString(rendered, db)
		if err != nil {
			t.Fatalf("trial %d: rendered %q from %q: %v", i, rendered, src, err)
		}
		if !got.EqualSet(want) {
			t.Errorf("trial %d: round-trip divergence\noriginal: %s\nrendered: %s\nwant:\n%s\ngot:\n%s",
				i, src, rendered, want, got)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := Generate(workload.Rand(5))
	b := Generate(workload.Rand(5))
	if a != b {
		t.Fatalf("generator not deterministic:\n%s\n%s", a, b)
	}
	if !strings.HasPrefix(a, "select ") {
		t.Fatalf("unexpected query: %s", a)
	}
}

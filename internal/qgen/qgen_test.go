package qgen

import (
	"strings"
	"testing"

	"repro/internal/alt"
	"repro/internal/arc2sql"
	"repro/internal/convention"
	"repro/internal/eval"
	"repro/internal/relation"
	"repro/internal/sql2arc"
	"repro/internal/sqleval"
	"repro/internal/value"
	"repro/internal/workload"
)

func renderBack(col *alt.Collection) (string, error) {
	return arc2sql.RenderString(col)
}

// TestDifferentialSQLvsARC is the pipeline property test: hundreds of
// random SQL queries must evaluate identically through (a) the
// independent SQL reference evaluator and (b) sql2arc translation + the
// ARC evaluator under SQL conventions. This mechanizes the Section 5
// coverage goal for the supported fragment.
func TestDifferentialSQLvsARC(t *testing.T) {
	const trials = 400
	rng := workload.Rand(20260612)
	bugs := 0
	for i := 0; i < trials; i++ {
		src := Generate(rng)
		inst := RandomInstance(rng, 12, i%3 == 0)
		db := sqleval.DB{}
		cat := eval.NewCatalog()
		for _, r := range inst.Relations() {
			db[r.Name()] = r
			cat.AddRelation(r)
		}
		want, err := sqleval.EvalString(src, db)
		if err != nil {
			t.Fatalf("trial %d: reference evaluator rejected generated query %q: %v", i, src, err)
		}
		col, err := sql2arc.TranslateString(src)
		if err != nil {
			t.Fatalf("trial %d: sql2arc rejected generated query %q: %v", i, src, err)
		}
		got, err := eval.Eval(col, cat, convention.SQL())
		if err != nil {
			t.Fatalf("trial %d: ARC evaluator failed on %q: %v\nALT: %s", i, src, err, col)
		}
		if !got.EqualBag(want) {
			bugs++
			t.Errorf("trial %d: divergence on %q\nsql:\n%s\narc:\n%s", i, src, want, got)
			if bugs > 3 {
				t.Fatal("stopping after 4 divergences")
			}
		}
	}
}

// TestDifferentialRoundTrip adds the third leg: ARC → SQL rendering must
// also agree (set-level, since flattening is set-exact).
func TestDifferentialRoundTrip(t *testing.T) {
	const trials = 150
	rng := workload.Rand(777)
	for i := 0; i < trials; i++ {
		src := Generate(rng)
		inst := RandomInstance(rng, 10, false)
		db := sqleval.DB{}
		for _, r := range inst.Relations() {
			db[r.Name()] = r
		}
		want, err := sqleval.EvalString(src, db)
		if err != nil {
			t.Fatalf("trial %d: %q: %v", i, src, err)
		}
		col, err := sql2arc.TranslateString(src)
		if err != nil {
			t.Fatalf("trial %d: %q: %v", i, src, err)
		}
		rendered, err := renderBack(col)
		if err != nil {
			// Renderer limitations (documented) are acceptable; skip.
			continue
		}
		got, err := sqleval.EvalString(rendered, db)
		if err != nil {
			t.Fatalf("trial %d: rendered %q from %q: %v", i, rendered, src, err)
		}
		if !got.EqualSet(want) {
			t.Errorf("trial %d: round-trip divergence\noriginal: %s\nrendered: %s\nwant:\n%s\ngot:\n%s",
				i, src, rendered, want, got)
		}
	}
}

// TestDirectedProbePushdownRegressions pins queries the random generator
// does not produce, in corners where index-probe pushdown once broke:
// constant ON conjuncts on FULL joins (unmatched rows must still
// null-extend) and alias shadowing between correlation scopes.
func TestDirectedProbePushdownRegressions(t *testing.T) {
	r := relationNew("R", "a", 1, 2)
	s := relationNew("S", "b", 2, 3)
	db := sqleval.DB{"R": r, "S": s}
	cat := eval.NewCatalog().AddRelation(r).AddRelation(s)

	// FULL JOIN with a constant ON conjunct: S's b=3 row matches nothing
	// and must surface null-extended on the left.
	q := "select R.a, S.b from R full join S on R.a = S.b and S.b = 2"
	want, err := sqleval.EvalString(q, db)
	if err != nil {
		t.Fatalf("sqleval: %v", err)
	}
	if want.Distinct() != 3 {
		t.Fatalf("sqleval full-join result lost a row:\n%s", want)
	}
	col, err := sql2arc.TranslateString(q)
	if err != nil {
		t.Fatalf("sql2arc: %v", err)
	}
	got, err := eval.Eval(col, cat, convention.SQL())
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	if !got.EqualBag(want) {
		t.Fatalf("full-join divergence on %q\nsql:\n%s\narc:\n%s", q, want, got)
	}

	// Alias shadowing: the inner FROM rebinds S, so the EXISTS body is
	// uncorrelated and true for every outer row. Both engines must agree.
	r2 := relationNew("R", "x", 1)
	s2 := relationNew("S", "y", 1, 2)
	shadowDB := sqleval.DB{"R": r2, "S": s2}
	q2 := "select S.y from S where exists (select R.x from R, S where R.x = S.y)"
	got2, err := sqleval.EvalString(q2, shadowDB)
	if err != nil {
		t.Fatalf("sqleval: %v", err)
	}
	if got2.Distinct() != 2 {
		t.Fatalf("alias shadowing dropped rows on %q:\n%s", q2, got2)
	}
	col2, err := sql2arc.TranslateString(q2)
	if err != nil {
		t.Fatalf("sql2arc: %v", err)
	}
	cat2 := eval.NewCatalog().AddRelation(r2).AddRelation(s2)
	gotARC, err := eval.Eval(col2, cat2, convention.SQL())
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	if !gotARC.EqualBag(got2) {
		t.Fatalf("alias-shadowing divergence on %q\nsql:\n%s\narc:\n%s", q2, got2, gotARC)
	}

	// Large numerics: a float-valued column probed with an integer
	// literal must still match (key alignment holds to 2^53; beyond it
	// the probe layer falls back to scans).
	r3 := relation.New("R", "a")
	r3.Insert(relation.Tuple{value.Float(1e15)})
	bigDB := sqleval.DB{"R": r3}
	q3 := "select R.a from R where R.a = 1000000000000000"
	got3, err := sqleval.EvalString(q3, bigDB)
	if err != nil {
		t.Fatalf("sqleval: %v", err)
	}
	if got3.Distinct() != 1 {
		t.Fatalf("probe missed float 1e15 against int literal on %q:\n%s", q3, got3)
	}
}

func relationNew(name, attr string, vals ...int) *relation.Relation {
	r := relation.New(name, attr)
	for _, v := range vals {
		r.Add(v)
	}
	return r
}

func TestGeneratorDeterministic(t *testing.T) {
	a := Generate(workload.Rand(5))
	b := Generate(workload.Rand(5))
	if a != b {
		t.Fatalf("generator not deterministic:\n%s\n%s", a, b)
	}
	if !strings.HasPrefix(a, "select ") {
		t.Fatalf("unexpected query: %s", a)
	}
}

package qgen

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/convention"
	"repro/internal/eval"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/sql2arc"
	"repro/internal/sqleval"
	"repro/internal/workload"
)

// TestPlannerDifferentialSQL is the planner acceptance property: over
// thousands of random queries, the plan-compiled path must return
// byte-identical results (canonical rendering, so attribute names and
// multiplicities included) to the pre-planner enumeration path — and the
// core qgen grammar must actually be planner-compiled, not silently
// falling back.
func TestPlannerDifferentialSQL(t *testing.T) {
	rng := workload.Rand(20260730)
	planned, total := 0, 0
	trial := func(i int, src string) {
		t.Helper()
		inst := RandomInstance(rng, 12, i%3 == 0)
		db := sqleval.DB{}
		for _, r := range inst.Relations() {
			db[r.Name()] = r
		}
		q, err := sql.Parse(src)
		if err != nil {
			t.Fatalf("trial %d: parse %q: %v", i, src, err)
		}
		want, err := sqleval.EvalMode(q, db, sqleval.PlanOff)
		if err != nil {
			t.Fatalf("trial %d: enumeration rejected %q: %v", i, src, err)
		}
		total++
		if _, cerr := plan.Compile(q, db); cerr == nil {
			planned++
		} else if !errors.Is(cerr, plan.ErrNotPlannable) {
			t.Fatalf("trial %d: compile error does not wrap ErrNotPlannable: %q: %v", i, src, cerr)
		}
		got, err := sqleval.EvalMode(q, db, sqleval.PlanAuto)
		if err != nil {
			t.Fatalf("trial %d: planner path failed on %q: %v", i, src, err)
		}
		if got.String() != want.String() {
			t.Fatalf("trial %d: planner divergence on %q\nenumeration:\n%s\nplanner:\n%s",
				i, src, want, got)
		}
	}
	for i := 0; i < 3000; i++ {
		trial(i, Generate(rng))
	}
	corePlanned := planned
	if corePlanned < total*95/100 {
		t.Fatalf("planner compiled only %d/%d core-grammar queries", corePlanned, total)
	}
	for i := 0; i < 1000; i++ {
		trial(3000+i, GenerateJoins(rng))
	}
	t.Logf("planner compiled %d/%d queries (core grammar: %d/3000)", planned, total, corePlanned)
	if planned < 3000 {
		t.Fatalf("fewer than 3000 planner-compiled queries were differentially verified (%d)", planned)
	}
}

// TestPlannerDifferentialRange pins the RangeScan lowering: over the
// range-heavy corpus (BETWEEN, one- and two-sided bounds, flipped
// literal sides, NULL-laden instances) the planner path must return
// byte-identical results to the enumeration path, and the corpus must
// actually compile to RangeScan plans rather than silently staying on
// filtered full scans.
func TestPlannerDifferentialRange(t *testing.T) {
	rng := workload.Rand(20260808)
	ranged := 0
	for i := 0; i < 1500; i++ {
		src := GenerateRange(rng)
		inst := RandomInstance(rng, 12, i%2 == 0)
		db := sqleval.DB{}
		for _, r := range inst.Relations() {
			db[r.Name()] = r
		}
		q, err := sql.Parse(src)
		if err != nil {
			t.Fatalf("trial %d: parse %q: %v", i, src, err)
		}
		want, err := sqleval.EvalMode(q, db, sqleval.PlanOff)
		if err != nil {
			t.Fatalf("trial %d: enumeration rejected %q: %v", i, src, err)
		}
		if p, cerr := plan.Compile(q, db); cerr == nil {
			if strings.Contains(p.Explain(), "RangeScan") {
				ranged++
			}
		} else if !errors.Is(cerr, plan.ErrNotPlannable) {
			t.Fatalf("trial %d: compile error does not wrap ErrNotPlannable: %q: %v", i, src, cerr)
		}
		got, err := sqleval.EvalMode(q, db, sqleval.PlanAuto)
		if err != nil {
			t.Fatalf("trial %d: planner path failed on %q: %v", i, src, err)
		}
		if got.String() != want.String() {
			t.Fatalf("trial %d: range divergence on %q\nenumeration:\n%s\nplanner:\n%s",
				i, src, want, got)
		}
	}
	if ranged < 1000 {
		t.Fatalf("only %d/1500 range-corpus queries compiled to a RangeScan", ranged)
	}
	t.Logf("range corpus: %d/1500 RangeScan plans", ranged)
}

// TestScopeCompilerDifferentialARC pins the ARC side of the same
// property: the tuple-compiled quantifier scopes must agree with the
// environment enumeration path over the random corpus. (The experiment
// goldens cover the paper's example corpus; here the two eval paths are
// compared directly.)
func TestScopeCompilerDifferentialARC(t *testing.T) {
	rng := workload.Rand(424242)
	compiledSame := 0
	for i := 0; i < 400; i++ {
		src := Generate(rng)
		inst := RandomInstance(rng, 10, i%4 == 0)
		cat := eval.NewCatalog()
		for _, r := range inst.Relations() {
			cat.AddRelation(r)
		}
		col, err := sql2arc.TranslateString(src)
		if err != nil {
			t.Fatalf("trial %d: sql2arc rejected %q: %v", i, src, err)
		}
		eval.DisableScopePlans = true
		want, errEnum := eval.Eval(col, cat, convention.SQL())
		eval.DisableScopePlans = false
		got, errPlan := eval.Eval(col, cat, convention.SQL())
		if (errEnum == nil) != (errPlan == nil) {
			t.Fatalf("trial %d: error divergence on %q: enum=%v plan=%v", i, src, errEnum, errPlan)
		}
		if errEnum != nil {
			continue
		}
		if got.String() != want.String() {
			t.Fatalf("trial %d: scope-compiler divergence on %q\nenumeration:\n%s\ncompiled:\n%s",
				i, src, want, got)
		}
		compiledSame++
	}
	if compiledSame < 300 {
		t.Fatalf("too few ARC differential trials completed: %d", compiledSame)
	}
}

// Package qgen generates random SQL queries over a fixed test schema for
// differential testing: every generated query is evaluated by the
// independent SQL reference evaluator (internal/sqleval) and — after
// sql2arc translation — by the ARC evaluator; the two must agree. This is
// the mechanical version of the paper's Section 5 goal that "every query
// [in a well-defined SQL fragment] has a pattern-preserving ARC
// representation" with semantics-preserving round-tripping.
package qgen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/relation"
	"repro/internal/workload"
)

// Schema is the fixed differential-testing schema.
// R(A,B), S(B,C), T(A,C) over small integer domains (to force joins,
// duplicates, and empty groups).
type Schema struct {
	R, S, T *relation.Relation
}

// RandomInstance generates an instance with the given size and
// optionally NULLs sprinkled into S.C.
func RandomInstance(rng *rand.Rand, n int, withNulls bool) Schema {
	r := workload.RandomBinary(rng, "R", "A", "B", n, 6, 5)
	s := workload.RandomBinary(rng, "S", "B", "C", n, 5, 4)
	t := workload.RandomBinary(rng, "T", "A", "C", n, 6, 4)
	if withNulls {
		for i := 0; i < n/5+1; i++ {
			s.Insert(relation.Tuple{relation.Lift(rng.Intn(5)), relation.Lift(nil)})
		}
	}
	return Schema{R: r, S: s, T: t}
}

// Relations lists the instance's relations.
func (s Schema) Relations() []*relation.Relation {
	return []*relation.Relation{s.R, s.S, s.T}
}

var tables = []struct {
	name  string
	attrs []string
}{
	{"R", []string{"A", "B"}},
	{"S", []string{"B", "C"}},
	{"T", []string{"A", "C"}},
}

// gen carries generation state for one query.
type gen struct {
	rng     *rand.Rand
	aliases []string // alias i ranges over tables[tableOf[i]]
	tableOf []int
	depth   int
}

// Generate produces one random SQL query string from the grammar:
//
//	SELECT [DISTINCT] cols|aggregates FROM 1..3 tables
//	WHERE conjunction of {join eq, const cmp, [NOT] EXISTS, IN, IS NULL}
//	[GROUP BY col [HAVING agg cmp const]]
//
// All generated queries are valid over the Schema above and are
// deterministic per rng state.
func Generate(rng *rand.Rand) string {
	g := &gen{rng: rng}
	return g.query(true)
}

func (g *gen) pickTable() int { return g.rng.Intn(len(tables)) }

func (g *gen) addAlias() int {
	ti := g.pickTable()
	alias := fmt.Sprintf("%s%d", strings.ToLower(tables[ti].name), len(g.aliases))
	g.aliases = append(g.aliases, alias)
	g.tableOf = append(g.tableOf, ti)
	return len(g.aliases) - 1
}

func (g *gen) col(i int) string {
	attrs := tables[g.tableOf[i]].attrs
	return g.aliases[i] + "." + attrs[g.rng.Intn(len(attrs))]
}

// query generates one SELECT; top allows aggregation.
func (g *gen) query(top bool) string {
	saveAliases, saveTables := g.aliases, g.tableOf
	defer func() { g.aliases, g.tableOf = saveAliases, saveTables }()
	g.aliases, g.tableOf = nil, nil

	n := 1 + g.rng.Intn(2)
	if top {
		n = 1 + g.rng.Intn(3)
	}
	var froms []string
	for i := 0; i < n; i++ {
		ai := g.addAlias()
		froms = append(froms, tables[g.tableOf[ai]].name+" "+g.aliases[ai])
	}

	var conds []string
	// Join conditions chain the FROM items so results stay small.
	for i := 1; i < n; i++ {
		conds = append(conds, fmt.Sprintf("%s = %s", g.col(i-1), g.col(i)))
	}
	// Extra random conditions.
	for k := g.rng.Intn(3); k > 0; k-- {
		conds = append(conds, g.condition())
	}

	grouped := top && g.rng.Intn(3) == 0
	distinct := ""
	if g.rng.Intn(3) == 0 {
		distinct = "distinct "
	}
	var items, tail string
	if grouped {
		key := g.col(0)
		agg := []string{"sum", "count", "min", "max"}[g.rng.Intn(4)]
		items = fmt.Sprintf("%s, %s(%s) ag", key, agg, g.col(g.rng.Intn(n)))
		tail = " group by " + key
		if g.rng.Intn(2) == 0 {
			tail += fmt.Sprintf(" having count(%s) >= %d", g.col(0), g.rng.Intn(3))
		}
		distinct = ""
	} else {
		k := 1 + g.rng.Intn(2)
		var cols []string
		for i := 0; i < k; i++ {
			cols = append(cols, fmt.Sprintf("%s c%d", g.col(g.rng.Intn(n)), i))
		}
		items = strings.Join(cols, ", ")
	}
	q := "select " + distinct + items + " from " + strings.Join(froms, ", ")
	if len(conds) > 0 {
		q += " where " + strings.Join(conds, " and ")
	}
	return q + tail
}

// GenerateJoins produces one random query over the same schema whose
// FROM uses explicit [INNER|LEFT|FULL] JOIN … ON syntax — the corpus the
// planner-vs-enumeration differential suite uses to stress hashed
// outer-join compilation (NULL join keys, constant ON conjuncts,
// residual ON predicates).
func GenerateJoins(rng *rand.Rand) string {
	g := &gen{rng: rng}
	n := 2 + g.rng.Intn(2)
	var aliasIdx []int
	for i := 0; i < n; i++ {
		aliasIdx = append(aliasIdx, g.addAlias())
	}
	from := tables[g.tableOf[aliasIdx[0]]].name + " " + g.aliases[aliasIdx[0]]
	for i := 1; i < n; i++ {
		kind := []string{"join", "left join", "full join"}[g.rng.Intn(3)]
		on := fmt.Sprintf("%s = %s", g.col(aliasIdx[i-1]), g.col(aliasIdx[i]))
		if g.rng.Intn(3) == 0 {
			on += fmt.Sprintf(" and %s %s %d",
				g.col(aliasIdx[g.rng.Intn(i+1)]),
				[]string{"=", "<", ">="}[g.rng.Intn(3)], g.rng.Intn(5))
		}
		from += fmt.Sprintf(" %s %s %s on %s",
			kind, tables[g.tableOf[aliasIdx[i]]].name, g.aliases[aliasIdx[i]], on)
	}
	var items []string
	for i := 0; i < 1+g.rng.Intn(2); i++ {
		items = append(items, fmt.Sprintf("%s c%d", g.col(g.rng.Intn(n)), i))
	}
	q := "select " + strings.Join(items, ", ") + " from " + from
	var conds []string
	for k := g.rng.Intn(2); k > 0; k-- {
		conds = append(conds, g.condition())
	}
	if len(conds) > 0 {
		q += " where " + strings.Join(conds, " and ")
	}
	return q
}

// GenerateRange produces one random query whose WHERE stresses range
// predicates — single- and double-bounded comparisons, flipped literal
// sides, and [NOT] BETWEEN — the corpus the planner's RangeScan
// lowering is differentially verified on (ordered-index range probes
// must agree byte-for-byte with the enumeration filters they replace,
// including NULL column values).
func GenerateRange(rng *rand.Rand) string {
	g := &gen{rng: rng}
	n := 1 + g.rng.Intn(2)
	var froms []string
	for i := 0; i < n; i++ {
		ai := g.addAlias()
		froms = append(froms, tables[g.tableOf[ai]].name+" "+g.aliases[ai])
	}
	var conds []string
	for i := 1; i < n; i++ {
		conds = append(conds, fmt.Sprintf("%s = %s", g.col(i-1), g.col(i)))
	}
	for k := 1 + g.rng.Intn(3); k > 0; k-- {
		conds = append(conds, g.rangeCond())
	}
	var items []string
	for i := 0; i < 1+g.rng.Intn(2); i++ {
		items = append(items, fmt.Sprintf("%s c%d", g.col(g.rng.Intn(n)), i))
	}
	q := "select " + strings.Join(items, ", ") + " from " + strings.Join(froms, ", ")
	return q + " where " + strings.Join(conds, " and ")
}

// rangeCond generates one ordering conjunct over small constants, so
// double-bounded ranges are frequently non-empty.
func (g *gen) rangeCond() string {
	col := g.col(g.rng.Intn(len(g.aliases)))
	a, b := g.rng.Intn(6), g.rng.Intn(6)
	if a > b {
		a, b = b, a
	}
	switch g.rng.Intn(5) {
	case 0:
		return fmt.Sprintf("%s between %d and %d", col, a, b)
	case 1:
		return fmt.Sprintf("%s not between %d and %d", col, a, b)
	case 2:
		return fmt.Sprintf("%d %s %s", a, []string{"<", "<="}[g.rng.Intn(2)], col)
	default:
		return fmt.Sprintf("%s %s %d", col, []string{"<", "<=", ">", ">="}[g.rng.Intn(4)], b)
	}
}

// GenerateRecursive produces one random WITH RECURSIVE query over the
// same schema — the corpus the recursion differential suite runs
// plan-vs-reference. Shapes: transitive closure over R(A,B) read as an
// edge relation, same-generation pairs, and depth-bounded step joins.
// UNION variants rely on set termination over the small cyclic domains;
// UNION ALL variants always carry a depth counter bounding the
// recursion, since bag accumulation over a cyclic instance would
// otherwise diverge.
func GenerateRecursive(rng *rand.Rand) string {
	g := &gen{rng: rng}
	switch g.rng.Intn(3) {
	case 0:
		return g.recursiveTC()
	case 1:
		return g.recursiveSameGen()
	}
	return g.recursiveBounded()
}

// recursiveTC: plain transitive closure, UNION (set termination).
func (g *gen) recursiveTC() string {
	edge := []string{"R", "S", "T"}[g.rng.Intn(3)]
	attrs := tables[indexOfTable(edge)].attrs
	q := fmt.Sprintf(
		"with recursive tc(x, y) as (select e.%[2]s, e.%[3]s from %[1]s e union select tc.x, e.%[3]s from tc, %[1]s e where tc.y = e.%[2]s) ",
		edge, attrs[0], attrs[1])
	return q + g.recursiveBody("tc", []string{"x", "y"})
}

// recursiveSameGen: same-generation pairs over R(A,B) (A = parent,
// B = child), UNION.
func (g *gen) recursiveSameGen() string {
	q := "with recursive sg(x, y) as (" +
		"select r.B, r2.B from R r, R r2 where r.A = r2.A" +
		" union " +
		"select r.B, r2.B from R r, sg, R r2 where r.A = sg.x and r2.A = sg.y) "
	return q + g.recursiveBody("sg", []string{"x", "y"})
}

// recursiveBounded: depth-counted step join, UNION or UNION ALL (the
// counter bounds both).
func (g *gen) recursiveBounded() string {
	edge := []string{"R", "S"}[g.rng.Intn(2)]
	attrs := tables[indexOfTable(edge)].attrs
	depth := 2 + g.rng.Intn(3)
	mode := "union"
	if g.rng.Intn(2) == 0 {
		mode = "union all"
	}
	q := fmt.Sprintf(
		"with recursive walk(x, y, d) as (select e.%[2]s, e.%[3]s, 1 from %[1]s e %[4]s select walk.x, e.%[3]s, walk.d + 1 from walk, %[1]s e where walk.y = e.%[2]s and walk.d < %[5]d) ",
		edge, attrs[0], attrs[1], mode, depth)
	return q + g.recursiveBody("walk", []string{"x", "y", "d"})
}

// recursiveBody builds the outer query over a CTE: projected columns
// with optional constant restriction or a join back to a base table.
func (g *gen) recursiveBody(cte string, cols []string) string {
	c1 := cols[g.rng.Intn(len(cols))]
	c2 := cols[g.rng.Intn(len(cols))]
	switch g.rng.Intn(4) {
	case 0:
		return fmt.Sprintf("select %s.%s c0, %s.%s c1 from %s", cte, c1, cte, c2, cte)
	case 1:
		return fmt.Sprintf("select distinct %s.%s c0 from %s", cte, c1, cte)
	case 2:
		return fmt.Sprintf("select %s.%s c0, %s.%s c1 from %s where %s.%s %s %d",
			cte, c1, cte, c2, cte, cte, cols[0],
			[]string{"=", "<", ">="}[g.rng.Intn(3)], g.rng.Intn(6))
	default:
		// Join back to a base table on the first CTE column.
		ti := g.pickTable()
		tb := tables[ti]
		ja := tb.attrs[g.rng.Intn(len(tb.attrs))]
		return fmt.Sprintf("select %s.%s c0, z.%s c1 from %s, %s z where %s.%s = z.%s",
			cte, c1, ja, cte, tb.name, cte, cols[g.rng.Intn(len(cols))], ja)
	}
}

func indexOfTable(name string) int {
	for i, t := range tables {
		if t.name == name {
			return i
		}
	}
	return 0
}

// condition generates one WHERE conjunct.
func (g *gen) condition() string {
	switch c := g.rng.Intn(6); {
	case c == 0 && g.depth < 2: // EXISTS
		g.depth++
		defer func() { g.depth-- }()
		corr := g.col(g.rng.Intn(len(g.aliases)))
		inner := g.subquery(corr)
		neg := ""
		if g.rng.Intn(2) == 0 {
			neg = "not "
		}
		return neg + "exists (" + inner + ")"
	case c == 1 && g.depth < 2: // IN
		g.depth++
		defer func() { g.depth-- }()
		lhs := g.col(g.rng.Intn(len(g.aliases)))
		ti := g.pickTable()
		attrs := tables[ti].attrs
		col := attrs[g.rng.Intn(len(attrs))]
		neg := ""
		if g.rng.Intn(3) == 0 {
			neg = "not "
		}
		return fmt.Sprintf("%s %sin (select z.%s from %s z)", lhs, neg, col, tables[ti].name)
	case c == 2:
		return g.col(g.rng.Intn(len(g.aliases))) + " is null"
	case c == 3:
		return g.col(g.rng.Intn(len(g.aliases))) + " is not null"
	default:
		op := []string{"=", "<>", "<", "<=", ">", ">="}[g.rng.Intn(6)]
		return fmt.Sprintf("%s %s %d", g.col(g.rng.Intn(len(g.aliases))), op, g.rng.Intn(6))
	}
}

// subquery builds a correlated single-table EXISTS body.
func (g *gen) subquery(corr string) string {
	ti := g.pickTable()
	attrs := tables[ti].attrs
	alias := fmt.Sprintf("w%d", g.rng.Intn(100))
	col := attrs[g.rng.Intn(len(attrs))]
	cond := fmt.Sprintf("%s.%s = %s", alias, col, corr)
	if g.rng.Intn(3) == 0 {
		cond += fmt.Sprintf(" and %s.%s < %d", alias, attrs[g.rng.Intn(len(attrs))], g.rng.Intn(6))
	}
	return fmt.Sprintf("select 1 from %s %s where %s", tables[ti].name, alias, cond)
}

// Package trace collects per-execution operator statistics for EXPLAIN
// ANALYZE and the slow-query log: rows emitted per operator, hash-join
// build sizes and probe hit/miss counts, per-operator wall time, and
// per-round delta sizes for fixpoint (recursive) computations.
//
// A *Trace is per-execution, single-goroutine state — exactly like the
// planner's runCtx that carries it. The disabled path is a nil *Trace:
// every instrumentation site nil-checks before touching per-row state,
// so an untraced execution pays nothing.
package trace

import (
	"fmt"
	"time"
)

// Op holds the counters of one operator for one execution. Fields are
// plain (non-atomic) ints: an execution runs on one goroutine and the
// trace is read only after the result is drained.
type Op struct {
	Rows        int64 // rows the operator emitted
	ProbeHits   int64 // probe-side rows with at least one join match
	ProbeMisses int64 // probe-side rows with no match
	BuildRows   int64 // hash-table build size (join operators)
	Nanos       int64 // wall time inside the operator and its inputs, excluding consumers
}

// Round is one fixpoint round: the number of new (delta) tuples it
// produced and how long deriving them took.
type Round struct {
	Delta int
	Nanos int64
}

// Fixpoint records the per-round history of one recursive computation.
type Fixpoint struct {
	Name   string
	Rounds []Round
}

// Observe appends one round. It is the callback target for
// fixpoint.Options.OnRound / fixpoint.CTE.OnRound.
func (f *Fixpoint) Observe(delta int, elapsed time.Duration) {
	f.Rounds = append(f.Rounds, Round{Delta: delta, Nanos: elapsed.Nanoseconds()})
}

// TotalDelta sums the delta sizes across rounds.
func (f *Fixpoint) TotalDelta() int {
	n := 0
	for _, r := range f.Rounds {
		n += r.Delta
	}
	return n
}

// Trace is one execution's statistics, keyed by operator identity (the
// compiled plan-node pointer, which is stable across executions of one
// prepared statement).
type Trace struct {
	ops map[any]*Op
	fps map[any]*Fixpoint
	// fporder preserves fixpoint creation order, so renderings that list
	// every recursive computation are deterministic.
	fporder []any

	Rows    int64         // rows returned to the caller
	Elapsed time.Duration // wall time of the whole execution
}

// New returns an empty enabled trace.
func New() *Trace {
	return &Trace{ops: map[any]*Op{}, fps: map[any]*Fixpoint{}}
}

// Op returns the counter block for key, creating it on first use.
func (t *Trace) Op(key any) *Op {
	op := t.ops[key]
	if op == nil {
		op = &Op{}
		t.ops[key] = op
	}
	return op
}

// Lookup returns the counter block for key, or nil if the operator
// never ran (e.g. a join input cut short by LIMIT-style early exit).
func (t *Trace) Lookup(key any) *Op {
	if t == nil {
		return nil
	}
	return t.ops[key]
}

// Fixpoint returns the round recorder for key, creating it on first
// use. Re-executions of the same key (a CTE re-materialized per run)
// reuse the recorder, accumulating rounds.
func (t *Trace) Fixpoint(key any, name string) *Fixpoint {
	f := t.fps[key]
	if f == nil {
		f = &Fixpoint{Name: name}
		t.fps[key] = f
		t.fporder = append(t.fporder, key)
	}
	return f
}

// EachFixpoint visits every recursive computation's round recorder in
// creation order.
func (t *Trace) EachFixpoint(f func(*Fixpoint)) {
	if t == nil {
		return
	}
	for _, key := range t.fporder {
		f(t.fps[key])
	}
}

// LookupFixpoint returns the round recorder for key, or nil.
func (t *Trace) LookupFixpoint(key any) *Fixpoint {
	if t == nil {
		return nil
	}
	return t.fps[key]
}

// NumOps reports how many operators recorded counters.
func (t *Trace) NumOps() int {
	if t == nil {
		return 0
	}
	return len(t.ops)
}

// TotalRounds sums fixpoint rounds across all recursive computations in
// the execution.
func (t *Trace) TotalRounds() int {
	if t == nil {
		return 0
	}
	n := 0
	for _, f := range t.fps {
		n += len(f.Rounds)
	}
	return n
}

// Summary renders the one-line digest the slow-query log records.
func (t *Trace) Summary() string {
	if t == nil {
		return ""
	}
	s := fmt.Sprintf("ops=%d rows=%d", len(t.ops), t.Rows)
	if n := t.TotalRounds(); n > 0 {
		s += fmt.Sprintf(" fixpoint_rounds=%d", n)
	}
	return s
}

// FormatDuration renders nanoseconds the way EXPLAIN ANALYZE prints
// operator times: sub-millisecond rounding, stable across platforms.
func FormatDuration(nanos int64) string {
	d := time.Duration(nanos)
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.Round(time.Nanosecond).String()
	}
}

package pattern

import (
	"sort"
	"strings"

	"repro/internal/alt"
)

// Canonical produces a normal form of a collection's pattern that is
// invariant under range-variable renaming and under reordering of
// conjuncts, disjuncts, and bindings — the basis for pattern equality.
// Two queries with equal canonical forms have the same relational pattern
// (the converse does not hold in general; this is a sound, not complete,
// pattern-equality test).
func Canonical(col *alt.Collection) string {
	var b strings.Builder
	b.WriteString("col(")
	b.WriteString(strings.Join(col.Head.Attrs, ","))
	b.WriteString(")")
	b.WriteString(canonFormula(col.Body, map[string]string{"@head": col.Head.Rel}))
	return b.String()
}

// CanonicalEqual reports pattern equality of two collections.
func CanonicalEqual(a, b *alt.Collection) bool {
	return Canonical(a) == Canonical(b)
}

// canonFormula renders a formula with variables replaced by their source
// description, making the form α-invariant. ren maps variable names to
// canonical source strings.
func canonFormula(f alt.Formula, ren map[string]string) string {
	switch x := f.(type) {
	case nil:
		return "⊤"
	case *alt.And:
		parts := make([]string, 0, len(x.Kids))
		for _, k := range x.Kids {
			parts = append(parts, canonFormula(k, ren))
		}
		sort.Strings(parts)
		return "and(" + strings.Join(parts, ";") + ")"
	case *alt.Or:
		parts := make([]string, 0, len(x.Kids))
		for _, k := range x.Kids {
			parts = append(parts, canonFormula(k, ren))
		}
		sort.Strings(parts)
		return "or(" + strings.Join(parts, ";") + ")"
	case *alt.Not:
		return "not(" + canonFormula(x.Kid, ren) + ")"
	case *alt.Pred:
		l := canonTerm(x.Left, ren)
		r := canonTerm(x.Right, ren)
		op := x.Op
		// Normalize operand order for symmetric operators.
		if (op.String() == "=" || op.String() == "<>") && r < l {
			l, r = r, l
		} else if r < l {
			// a < b and b > a are the same pattern.
			l, r = r, l
			op = op.Flip()
		}
		return l + op.String() + r
	case *alt.IsNull:
		if x.Negated {
			return canonTerm(x.Arg, ren) + " notnull"
		}
		return canonTerm(x.Arg, ren) + " isnull"
	case *alt.Quantifier:
		inner := cloneRen(ren)
		// Bindings sort by their source description; equal sources get
		// an occurrence index so self-joins stay distinguishable.
		type bnd struct {
			src string
			b   *alt.Binding
		}
		bs := make([]bnd, 0, len(x.Bindings))
		for _, b := range x.Bindings {
			src := ""
			if b.Sub != nil {
				src = "sub" + canonFormula(b.Sub.Body, cloneRen(inner)) // approximate: nested canonical
			} else {
				src = b.Rel
			}
			bs = append(bs, bnd{src: src, b: b})
		}
		sort.SliceStable(bs, func(i, j int) bool { return bs[i].src < bs[j].src })
		occ := map[string]int{}
		var srcs []string
		for _, e := range bs {
			occ[e.src]++
			name := e.src
			if occ[e.src] > 1 {
				name = e.src + "#" + itoa(occ[e.src])
			}
			inner[e.b.Var] = name
			srcs = append(srcs, name)
		}
		if len(x.Bindings) > 0 {
			// Re-resolve nested collection bodies now that their own
			// variables and outer variables are in scope.
			for i, e := range bs {
				if e.b.Sub != nil {
					srcs[i] = "sub(" + canonFormula(e.b.Sub.Body, cloneRen(inner)) + ")"
					inner[e.b.Var] = srcs[i]
				}
			}
		}
		// Constant join leaves bind synthetic variables; canonicalize
		// them by their literal value.
		if x.Join != nil {
			var regConsts func(alt.JoinExpr)
			regConsts = func(j alt.JoinExpr) {
				switch jx := j.(type) {
				case *alt.JoinConst:
					if jx.Var != "" {
						inner[jx.Var] = "const:" + jx.Val.Key()
					}
				case *alt.JoinOp:
					for _, k := range jx.Kids {
						regConsts(k)
					}
				}
			}
			regConsts(x.Join)
		}
		s := "exists[" + strings.Join(srcs, ",") + "]"
		if x.Grouping != nil {
			keys := make([]string, 0, len(x.Grouping.Keys))
			for _, k := range x.Grouping.Keys {
				keys = append(keys, canonTerm(k, inner))
			}
			sort.Strings(keys)
			s += "γ(" + strings.Join(keys, ",") + ")"
		}
		if x.Join != nil {
			s += "join(" + canonJoin(x.Join, inner) + ")"
		}
		return s + "(" + canonFormula(x.Body, inner) + ")"
	}
	return "?"
}

func canonJoin(j alt.JoinExpr, ren map[string]string) string {
	switch x := j.(type) {
	case *alt.JoinVar:
		if r, ok := ren[x.Var]; ok {
			return r
		}
		return x.Var
	case *alt.JoinConst:
		return "const:" + x.Val.Key()
	case *alt.JoinOp:
		parts := make([]string, 0, len(x.Kids))
		for _, k := range x.Kids {
			parts = append(parts, canonJoin(k, ren))
		}
		if x.Kind == alt.JoinInner {
			sort.Strings(parts)
		}
		return x.Kind.String() + "(" + strings.Join(parts, ",") + ")"
	}
	return "?"
}

func canonTerm(t alt.Term, ren map[string]string) string {
	switch x := t.(type) {
	case *alt.AttrRef:
		src, ok := ren[x.Var]
		if !ok {
			// Head references canonicalize by role, not name.
			if ren["@head"] == x.Var {
				return "head." + x.Attr
			}
			src = x.Var
		}
		return src + "." + x.Attr
	case *alt.Const:
		return x.Val.Key()
	case *alt.Agg:
		return x.Func.String() + "(" + canonTerm(x.Arg, ren) + ")"
	case *alt.Arith:
		l, r := canonTerm(x.L, ren), canonTerm(x.R, ren)
		if (x.Op == alt.OpAdd || x.Op == alt.OpMul) && r < l {
			l, r = r, l
		}
		return "(" + l + x.Op.String() + r + ")"
	}
	return "?"
}

func cloneRen(ren map[string]string) map[string]string {
	out := make(map[string]string, len(ren))
	for k, v := range ren {
		out[k] = v
	}
	return out
}

func itoa(i int) string {
	digits := "0123456789"
	if i < 10 {
		return string(digits[i])
	}
	return itoa(i/10) + string(digits[i%10])
}

package pattern

import (
	"strings"
	"testing"

	"repro/internal/alt"
	"repro/internal/arc"
	"repro/internal/relpat"
	"repro/internal/sql2arc"
)

func TestSignatureDistinguishesPatterns(t *testing.T) {
	// The paper's central claim for Fig 6 vs Fig 7: (8) scans R and S
	// once; (10) scans each three times.
	fio, err := ComputeSignature(relpat.MultiAggFIO())
	if err != nil {
		t.Fatal(err)
	}
	hella, err := ComputeSignature(relpat.MultiAggHella())
	if err != nil {
		t.Fatal(err)
	}
	rel, err := ComputeSignature(relpat.MultiAggRel())
	if err != nil {
		t.Fatal(err)
	}
	if fio.RelCounts["R"] != 1 || fio.RelCounts["S"] != 1 {
		t.Errorf("FIO scans: %v", fio.RelCounts)
	}
	if hella.RelCounts["R"] != 3 || hella.RelCounts["S"] != 3 {
		t.Errorf("Hella scans: %v", hella.RelCounts)
	}
	if rel.RelCounts["R"] != 2 || rel.RelCounts["S"] != 2 {
		t.Errorf("Rel scans: %v", rel.RelCounts)
	}
	// Correlation structure also differs: Hella's aggregate scopes are
	// correlated; Rel's are not.
	if hella.CorrelatedCollections != 2 {
		t.Errorf("Hella correlations = %d", hella.CorrelatedCollections)
	}
	if rel.CorrelatedCollections != 0 {
		t.Errorf("Rel correlations = %d", rel.CorrelatedCollections)
	}
}

func TestSimilarityOrdersPatterns(t *testing.T) {
	fio, _ := ComputeSignature(relpat.MultiAggFIO())
	hella, _ := ComputeSignature(relpat.MultiAggHella())
	rel, _ := ComputeSignature(relpat.MultiAggRel())
	sSelf := Similarity(fio, fio)
	sRel := Similarity(fio, rel)
	sHella := Similarity(fio, hella)
	if sSelf != 1 {
		t.Errorf("self-similarity = %f", sSelf)
	}
	if !(sRel > sHella) {
		t.Errorf("Rel (%f) should be closer to FIO than Hella (%f)", sRel, sHella)
	}
	if Similarity(hella, rel) >= 1 {
		t.Error("different patterns must not be identical")
	}
}

func TestCanonicalInvariance(t *testing.T) {
	// Same pattern, different variable names and predicate order.
	a := arc.MustParseCollection("{Q(A) | ∃r ∈ R, s ∈ S [Q.A = r.A ∧ r.B = s.B ∧ s.C = 0]}")
	b := arc.MustParseCollection("{Q(A) | ∃u ∈ S, t ∈ R [0 = u.C ∧ u.B = t.B ∧ Q.A = t.A]}")
	if !CanonicalEqual(a, b) {
		t.Fatalf("α-equivalent patterns differ:\n%s\n%s", Canonical(a), Canonical(b))
	}
	// A genuinely different pattern (extra scan) differs.
	c := arc.MustParseCollection("{Q(A) | ∃r ∈ R, s ∈ S, s2 ∈ S [Q.A = r.A ∧ r.B = s.B ∧ s.C = 0 ∧ s2.C = 1]}")
	if CanonicalEqual(a, c) {
		t.Fatal("different patterns must not canonicalize equal")
	}
}

func TestCanonicalSeparatesMultiAggPatterns(t *testing.T) {
	cs := map[string]string{
		"fio":   Canonical(relpat.MultiAggFIO()),
		"hella": Canonical(relpat.MultiAggHella()),
		"rel":   Canonical(relpat.MultiAggRel()),
	}
	if cs["fio"] == cs["hella"] || cs["fio"] == cs["rel"] || cs["hella"] == cs["rel"] {
		t.Fatalf("multi-aggregate patterns must have distinct canonical forms: %v", cs)
	}
}

func TestClassifyAggregation(t *testing.T) {
	fio := arc.MustParseCollection("{Q(A, sm) | ∃r ∈ R, γ r.A [Q.A = r.A ∧ Q.sm = sum(r.B)]}")
	if p, _ := ClassifyAggregation(fio); p != FIO {
		t.Errorf("query (3) classifies %v, want FIO", p)
	}
	foi := arc.MustParseCollection(`{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm) | ∃r2 ∈ R, γ ∅ [r2.A = r.A ∧ X.sm = sum(r2.B)]} [Q.A = r.A ∧ Q.sm = x.sm]}`)
	if p, _ := ClassifyAggregation(foi); p != FOI {
		t.Errorf("query (7) classifies %v, want FOI", p)
	}
	none := arc.MustParseCollection("{Q(A) | ∃r ∈ R [Q.A = r.A]}")
	if p, _ := ClassifyAggregation(none); p != NoAggregation {
		t.Errorf("plain query classifies %v, want none", p)
	}
	if p, _ := ClassifyAggregation(relpat.MultiAggHella()); p != FOI {
		t.Errorf("Hella (10) classifies %v, want FOI", p)
	}
	if p, _ := ClassifyAggregation(relpat.MultiAggRel()); p != FIO {
		t.Errorf("Rel (12) classifies %v, want FIO (separate scopes, still inside-out)", p)
	}
	// Soufflé-style translation is FOI.
	sou := arc.MustParseCollection(`{Q(a, sm) | ∃t ∈ R, x ∈ {X(res) | ∃s ∈ R, γ ∅ [s.a = t.a ∧ X.res = sum(s.b)]} [Q.a = t.a ∧ Q.sm = x.res]}`)
	if p, _ := ClassifyAggregation(sou); p != FOI {
		t.Errorf("Soufflé pattern classifies %v, want FOI", p)
	}
}

func TestCountBugLint(t *testing.T) {
	v1, err := sql2arc.TranslateString(`select R.id from R
		where R.q = (select count(S.d) from S where S.id = R.id)`)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := sql2arc.TranslateString(`select R.id from R,
		(select S.id, count(S.d) as ct from S group by S.id) as X
		where R.q = X.ct and R.id = X.id`)
	if err != nil {
		t.Fatal(err)
	}
	v3, err := sql2arc.TranslateString(`select R.id from R,
		(select R2.id, count(S.d) as ct from R R2 left join S on R2.id = S.id group by R2.id) as X
		where R.q = X.ct and R.id = X.id`)
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := LintCountBug(v1); len(f) != 0 {
		t.Errorf("version 1 is correct; lint flagged %v", f)
	}
	f2, _ := LintCountBug(v2)
	if len(f2) != 1 || !strings.Contains(f2[0].Message, "empty groups") {
		t.Errorf("version 2 should be flagged, got %v", f2)
	}
	if f, _ := LintCountBug(v3); len(f) != 0 {
		t.Errorf("version 3 is correct; lint flagged %v", f)
	}
}

func TestModalityMetrics(t *testing.T) {
	simple := arc.MustParseCollection("{Q(A) | ∃r ∈ R [Q.A = r.A]}")
	nested := relpat.UniqueSet()
	ms := ComputeModalityMetrics(simple)
	mn := ComputeModalityMetrics(nested)
	if ms.ComprehensionTokens <= 0 || ms.ALTNodes <= 0 {
		t.Fatalf("metrics empty: %+v", ms)
	}
	if mn.ComprehensionTokens <= ms.ComprehensionTokens || mn.ALTNodes <= ms.ALTNodes {
		t.Errorf("unique-set query should measure larger: %+v vs %+v", mn, ms)
	}
	if mn.MaxScopeDepth <= ms.MaxScopeDepth {
		t.Errorf("unique-set query should nest deeper: %+v vs %+v", mn, ms)
	}
}

func TestSignatureString(t *testing.T) {
	sig, err := ComputeSignature(relpat.MultiAggHella())
	if err != nil {
		t.Fatal(err)
	}
	s := sig.String()
	for _, want := range []string{"R×3", "S×3", "avg×1", "sum×1"} {
		if !strings.Contains(s, want) {
			t.Errorf("signature %q missing %q", s, want)
		}
	}
	// Recursion marker.
	rec := arc.MustParseCollection(`{A(s, t) | ∃p ∈ P [A.s = p.s ∧ A.t = p.t] ∨
		∃p ∈ P, a2 ∈ A [A.s = p.s ∧ p.t = a2.s ∧ A.t = a2.t]}`)
	rsig, err := ComputeSignature(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !rsig.Recursive || !strings.Contains(rsig.String(), "recursive") {
		t.Errorf("recursive signature: %s", rsig)
	}
	if rsig.RelCounts["A"] != 0 {
		t.Errorf("self-reference should not count as a base scan: %v", rsig.RelCounts)
	}
}

func TestCanonicalOfJoinAnnotations(t *testing.T) {
	a := arc.MustParseCollection(`{Q(m, n) | ∃r ∈ R, s ∈ S, left(r, inner(11 AS c, s)) [Q.m = r.m ∧ Q.n = s.n ∧ r.y = s.y ∧ r.h = c.val]}`)
	// α-renamed version of the same annotated query.
	b := arc.MustParseCollection(`{Q(m, n) | ∃w ∈ R, z ∈ S, left(w, inner(11 AS k, z)) [Q.m = w.m ∧ Q.n = z.n ∧ w.y = z.y ∧ w.h = k.val]}`)
	c := Canonical(a)
	if !strings.Contains(c, "left(") || !strings.Contains(c, "const:") {
		t.Errorf("join annotation canonical form: %s", c)
	}
	if !CanonicalEqual(a, b) {
		t.Errorf("α-renamed annotated queries must canonicalize equal:\n%s\n%s", c, Canonical(b))
	}
}

func TestSignatureErrorPropagation(t *testing.T) {
	bad := alt.Col("Q", []string{"A"},
		alt.Exists([]*alt.Binding{alt.Bind("r", "R")},
			alt.Eq(alt.Ref("Q", "A"), alt.Ref("zz", "A"))))
	if _, err := ComputeSignature(bad); err == nil {
		t.Fatal("unlinked collection must error")
	}
	if _, err := ClassifyAggregation(bad); err == nil {
		t.Fatal("unlinked collection must error")
	}
}

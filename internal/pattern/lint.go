package pattern

import (
	"fmt"

	"repro/internal/alt"
)

// Finding is one lint diagnosis.
type Finding struct {
	Code    string
	Message string
}

// String renders "CODE: message".
func (f Finding) String() string { return f.Code + ": " + f.Message }

// LintCountBug detects the decorrelation shape the paper diagnoses in
// Section 3.2: an uncorrelated keyed-grouped nested collection whose
// count output is equated with an outer attribute and whose grouping key
// is equated with an outer attribute. That rewrite (Fig 21b) silently
// loses outer tuples whose group is empty — the COUNT bug. The correct
// shapes (correlated γ∅ as in version 1, or a left join over the outer
// relation as in version 3) are not flagged.
func LintCountBug(col *alt.Collection) ([]Finding, error) {
	link, err := alt.LinkCollection(col)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	var walk func(f alt.Formula)
	walk = func(f alt.Formula) {
		switch x := f.(type) {
		case *alt.And:
			for _, k := range x.Kids {
				walk(k)
			}
		case *alt.Or:
			for _, k := range x.Kids {
				walk(k)
			}
		case *alt.Not:
			walk(x.Kid)
		case *alt.Quantifier:
			for _, b := range x.Bindings {
				if b.Sub == nil {
					continue
				}
				if d := diagnoseCountBug(x, b, link); d != "" {
					findings = append(findings, Finding{Code: "COUNT-BUG", Message: d})
				}
				walk(b.Sub.Body)
			}
			walk(x.Body)
		}
	}
	walk(col.Body)
	return findings, nil
}

// diagnoseCountBug checks one nested-collection binding within a scope.
func diagnoseCountBug(q *alt.Quantifier, b *alt.Binding, link *alt.Link) string {
	sub := b.Sub
	// The suspicious inner shape: top quantifier with keyed grouping, a
	// count aggregate, no correlation, and no outer join covering the
	// grouped relation.
	iq, ok := sub.Body.(*alt.Quantifier)
	if !ok || iq.Grouping == nil || len(iq.Grouping.Keys) == 0 {
		return ""
	}
	if len(link.Correlated[sub]) > 0 {
		return "" // correlated: per-outer-tuple semantics preserved
	}
	if iq.Join != nil {
		return "" // an outer-join annotation preserves empty groups (version 3)
	}
	hasCount := false
	countAttr := ""
	for _, el := range alt.Spine(iq.Body) {
		p, ok := el.(*alt.Pred)
		if !ok {
			continue
		}
		for side, t := range []alt.Term{p.Left, p.Right} {
			if a, isAgg := t.(*alt.Agg); isAgg && (a.Func == alt.AggCount || a.Func == alt.AggCountDistinct) {
				hasCount = true
				other := p.Right
				if side == 1 {
					other = p.Left
				}
				if r, isRef := other.(*alt.AttrRef); isRef {
					if res := link.Refs[r]; res.Kind == alt.RefHead && res.Col == sub {
						countAttr = r.Attr
					}
				}
			}
		}
	}
	if !hasCount || countAttr == "" {
		return ""
	}
	// The outer scope must compare the count attribute with something
	// bound outside the nested collection.
	for _, el := range alt.Spine(q.Body) {
		p, ok := el.(*alt.Pred)
		if !ok {
			continue
		}
		for _, r := range alt.TermAttrRefs(p.Left, alt.TermAttrRefs(p.Right, nil)) {
			if r.Var == b.Var && r.Attr == countAttr {
				return fmt.Sprintf(
					"count over keyed grouping in uncorrelated subquery %s compared via %s.%s drops outer tuples with empty groups (Fig 21b); use a correlated γ∅ scope or a left join over the outer relation",
					sub.Head.Rel, b.Var, countAttr)
			}
		}
	}
	return ""
}

// ModalityMetrics reports the size of the same query in each modality —
// the measurable proxy for the paper's usability discussion (experiment
// E21): comprehension token count, ALT node count, and higraph region and
// edge counts are filled in by the caller for the higraph modality.
type ModalityMetrics struct {
	ComprehensionTokens int
	ComprehensionRunes  int
	ALTNodes            int
	MaxScopeDepth       int
}

// ComputeModalityMetrics measures the comprehension and ALT modalities.
func ComputeModalityMetrics(col *alt.Collection) ModalityMetrics {
	text := col.String()
	sig, _ := ComputeSignature(col)
	depth := 0
	if sig != nil {
		depth = sig.MaxDepth
	}
	return ModalityMetrics{
		ComprehensionTokens: len(tokenize(text)),
		ComprehensionRunes:  len([]rune(text)),
		ALTNodes:            alt.NodeCount(col),
		MaxScopeDepth:       depth,
	}
}

// tokenize splits comprehension text into coarse tokens (identifiers,
// numbers, symbols) for the token-count metric.
func tokenize(s string) []string {
	var out []string
	cur := []rune{}
	flush := func() {
		if len(cur) > 0 {
			out = append(out, string(cur))
			cur = cur[:0]
		}
	}
	for _, r := range s {
		switch {
		case r == ' ' || r == '\t' || r == '\n':
			flush()
		case (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') || r == '_' || r == '.':
			cur = append(cur, r)
		default:
			flush()
			out = append(out, string(r))
		}
	}
	flush()
	return out
}

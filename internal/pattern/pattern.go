// Package pattern implements the paper's "relational pattern" analysis
// (Section 1 question 3, Section 2.5, Section 3.2): language-agnostic
// descriptions of how a query composes its inputs. It provides pattern
// signatures (which relations are scanned how often, scope structure,
// aggregation shape), canonical forms for pattern equality under variable
// renaming and predicate reordering, a similarity measure for
// machine-facing semantic comparison, classification of aggregation
// patterns as "from the inside out" (FIO) vs "from the outside in" (FOI),
// and a COUNT-bug lint that flags the rewrite the paper diagnoses.
package pattern

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/alt"
)

// Signature summarizes the relational pattern of a collection.
type Signature struct {
	// RelCounts is the multiset of base-relation scans, including scans
	// inside nested collections — the "query signature" that
	// distinguishes (8) from (10) (one vs three scans of R and S).
	RelCounts map[string]int
	// Scopes is the number of quantifier scopes.
	Scopes int
	// GroupScopes is the number of grouping scopes.
	GroupScopes int
	// EmptyGroupScopes counts γ∅ scopes.
	EmptyGroupScopes int
	// Negations is the number of negation scopes.
	Negations int
	// NestedCollections is the number of nested collection sources.
	NestedCollections int
	// CorrelatedCollections counts nested collections referencing outer
	// variables.
	CorrelatedCollections int
	// Aggregates is the multiset of aggregate functions used.
	Aggregates map[string]int
	// OuterJoins counts left/full join-annotation nodes.
	OuterJoins int
	// MaxDepth is the maximum scope nesting depth.
	MaxDepth int
	// Disjuncts is the number of top-level disjuncts.
	Disjuncts int
	// Recursive reports a self-referencing definition.
	Recursive bool
}

// ComputeSignature links the collection and extracts its signature.
func ComputeSignature(col *alt.Collection) (*Signature, error) {
	link, err := alt.LinkCollection(col)
	if err != nil {
		return nil, err
	}
	sig := &Signature{RelCounts: map[string]int{}, Aggregates: map[string]int{}}
	sig.Disjuncts = len(orBranches(col.Body))
	sig.Recursive = link.RecursiveCols[col]
	walkSig(col.Body, link, sig, 1)
	return sig, nil
}

func orBranches(f alt.Formula) []alt.Formula {
	if o, ok := f.(*alt.Or); ok {
		var out []alt.Formula
		for _, k := range o.Kids {
			out = append(out, orBranches(k)...)
		}
		return out
	}
	return []alt.Formula{f}
}

func walkSig(f alt.Formula, link *alt.Link, sig *Signature, depth int) {
	switch x := f.(type) {
	case nil:
	case *alt.And:
		for _, k := range x.Kids {
			walkSig(k, link, sig, depth)
		}
	case *alt.Or:
		for _, k := range x.Kids {
			walkSig(k, link, sig, depth)
		}
	case *alt.Not:
		sig.Negations++
		walkSig(x.Kid, link, sig, depth)
	case *alt.Pred:
		for _, t := range []alt.Term{x.Left, x.Right} {
			countAggs(t, sig)
		}
	case *alt.Quantifier:
		sig.Scopes++
		if depth > sig.MaxDepth {
			sig.MaxDepth = depth
		}
		if x.Grouping != nil {
			sig.GroupScopes++
			if len(x.Grouping.Keys) == 0 {
				sig.EmptyGroupScopes++
			}
		}
		if x.Join != nil {
			countOuter(x.Join, sig)
		}
		for _, b := range x.Bindings {
			if b.Sub != nil {
				sig.NestedCollections++
				if len(link.Correlated[b.Sub]) > 0 {
					sig.CorrelatedCollections++
				}
				walkSig(b.Sub.Body, link, sig, depth+1)
				continue
			}
			if _, rec := link.RecursiveBindings[b]; rec {
				continue // self-reference, not a base scan
			}
			sig.RelCounts[b.Rel]++
		}
		walkSig(x.Body, link, sig, depth+1)
	}
}

func countAggs(t alt.Term, sig *Signature) {
	switch x := t.(type) {
	case *alt.Agg:
		sig.Aggregates[x.Func.String()]++
		countAggs(x.Arg, sig)
	case *alt.Arith:
		countAggs(x.L, sig)
		countAggs(x.R, sig)
	}
}

func countOuter(j alt.JoinExpr, sig *Signature) {
	if op, ok := j.(*alt.JoinOp); ok {
		if op.Kind == alt.JoinLeft || op.Kind == alt.JoinFull {
			sig.OuterJoins++
		}
		for _, k := range op.Kids {
			countOuter(k, sig)
		}
	}
}

// String renders the signature compactly for reports.
func (s *Signature) String() string {
	var rels []string
	for r, n := range s.RelCounts {
		rels = append(rels, fmt.Sprintf("%s×%d", r, n))
	}
	sort.Strings(rels)
	var aggs []string
	for a, n := range s.Aggregates {
		aggs = append(aggs, fmt.Sprintf("%s×%d", a, n))
	}
	sort.Strings(aggs)
	out := fmt.Sprintf("scans{%s} scopes=%d γ=%d(∅=%d) ¬=%d nested=%d(corr=%d) aggs{%s} outer=%d depth=%d",
		strings.Join(rels, ","), s.Scopes, s.GroupScopes, s.EmptyGroupScopes,
		s.Negations, s.NestedCollections, s.CorrelatedCollections,
		strings.Join(aggs, ","), s.OuterJoins, s.MaxDepth)
	if s.Recursive {
		out += " recursive"
	}
	return out
}

// features flattens a signature into a multiset for Jaccard similarity.
func (s *Signature) features() map[string]int {
	f := map[string]int{}
	for r, n := range s.RelCounts {
		f["scan:"+r] = n
	}
	for a, n := range s.Aggregates {
		f["agg:"+a] = n
	}
	f["scopes"] = s.Scopes
	f["groups"] = s.GroupScopes
	f["emptygroups"] = s.EmptyGroupScopes
	f["neg"] = s.Negations
	f["nested"] = s.NestedCollections
	f["corr"] = s.CorrelatedCollections
	f["outer"] = s.OuterJoins
	f["depth"] = s.MaxDepth
	f["disjuncts"] = s.Disjuncts
	return f
}

// Similarity is a [0,1] weighted-Jaccard score over pattern features —
// the paper's machine-facing "semantic similarity" proxy: semantically
// close patterns score high regardless of surface syntax.
func Similarity(a, b *Signature) float64 {
	fa, fb := a.features(), b.features()
	inter, union := 0, 0
	keys := map[string]bool{}
	for k := range fa {
		keys[k] = true
	}
	for k := range fb {
		keys[k] = true
	}
	for k := range keys {
		x, y := fa[k], fb[k]
		if x < y {
			inter += x
			union += y
		} else {
			inter += y
			union += x
		}
	}
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// AggPattern classifies how a query aggregates (Section 2.5).
type AggPattern int

const (
	// NoAggregation: the query has no aggregates.
	NoAggregation AggPattern = iota
	// FIO — "from the inside out": grouping and aggregation happen on
	// attributes inside a scope whose results flow outward (grouped
	// attributes available outside), as in SQL GROUP BY / query (3)/(8).
	FIO
	// FOI — "from the outside in": the grouping key is fixed by an outer
	// tuple and passed into a correlated aggregation scope (γ∅ inside a
	// correlated nested collection, or an aggregate comparison against
	// outer attributes), as in Klug/Hella/Soufflé / query (7)/(10).
	FOI
	// MixedAgg: both patterns occur.
	MixedAgg
)

// String names the pattern.
func (p AggPattern) String() string {
	switch p {
	case NoAggregation:
		return "none"
	case FIO:
		return "FIO"
	case FOI:
		return "FOI"
	case MixedAgg:
		return "mixed"
	}
	return "?"
}

// ClassifyAggregation determines the aggregation pattern of a collection.
// A grouping scope reads FOI when the scope is correlated — its
// predicates reference variables bound outside the scope, so the
// grouping is parameterized "per outer tuple" (the Klug/Hella/Soufflé
// pattern and correlated scalar subqueries, queries (7)/(10)).
// Uncorrelated grouping scopes (SQL GROUP BY, global aggregates, Rel's
// separate-scope aggregation (12)) read FIO.
func ClassifyAggregation(col *alt.Collection) (AggPattern, error) {
	link, err := alt.LinkCollection(col)
	if err != nil {
		return NoAggregation, err
	}
	foi, fio := false, false
	var walk func(f alt.Formula)
	walk = func(f alt.Formula) {
		switch x := f.(type) {
		case *alt.And:
			for _, k := range x.Kids {
				walk(k)
			}
		case *alt.Or:
			for _, k := range x.Kids {
				walk(k)
			}
		case *alt.Not:
			walk(x.Kid)
		case *alt.Quantifier:
			if x.Grouping != nil && scopeHasAgg(x) {
				if scopeIsCorrelated(x, link) {
					foi = true
				} else {
					fio = true
				}
			}
			for _, b := range x.Bindings {
				if b.Sub != nil {
					walk(b.Sub.Body)
				}
			}
			walk(x.Body)
		}
	}
	walk(col.Body)
	switch {
	case foi && fio:
		return MixedAgg, nil
	case foi:
		return FOI, nil
	case fio:
		return FIO, nil
	}
	return NoAggregation, nil
}

// scopeIsCorrelated reports whether a quantifier's spine references range
// variables bound outside the quantifier.
func scopeIsCorrelated(q *alt.Quantifier, link *alt.Link) bool {
	local := map[string]bool{}
	for _, b := range q.Bindings {
		local[b.Var] = true
	}
	for _, el := range alt.Spine(q.Body) {
		for _, r := range alt.FormulaAttrRefs(el, nil) {
			res, ok := link.Refs[r]
			if !ok || res.Kind != alt.RefBinding {
				continue
			}
			if !local[r.Var] {
				return true
			}
		}
	}
	return false
}

func scopeHasAgg(q *alt.Quantifier) bool {
	for _, el := range alt.Spine(q.Body) {
		if p, ok := el.(*alt.Pred); ok && (alt.ContainsAgg(p.Left) || alt.ContainsAgg(p.Right)) {
			return true
		}
	}
	return false
}

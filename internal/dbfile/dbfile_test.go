package dbfile

import (
	"testing"

	"repro/internal/relation"
	"repro/internal/value"
)

func TestParseDB(t *testing.T) {
	src := `# a comment
R(A,B)
1,10
2,null
3,2.5
4,'hello'

S(B)
10
`
	rels, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 2 {
		t.Fatalf("relations = %d", len(rels))
	}
	r := rels[0]
	if r.Name() != "R" || r.Card() != 4 {
		t.Fatalf("R = %s", r)
	}
	if !r.Contains(relation.Tuple{value.Int(2), value.Null()}) {
		t.Error("null cell broken")
	}
	if !r.Contains(relation.Tuple{value.Int(3), value.Float(2.5)}) {
		t.Error("float cell broken")
	}
	if !r.Contains(relation.Tuple{value.Int(4), value.Str("hello")}) {
		t.Error("string cell broken")
	}
	if rels[1].Name() != "S" || rels[1].Card() != 1 {
		t.Fatalf("S = %s", rels[1])
	}
}

func TestParseDBErrors(t *testing.T) {
	if _, err := Parse("not a header\n"); err == nil {
		t.Error("bad header must error")
	}
	if _, err := Parse("R(A,B)\n1\n"); err == nil {
		t.Error("arity mismatch must error")
	}
	if _, err := Parse("R(A,)\n"); err == nil {
		t.Error("empty attribute must error")
	}
}

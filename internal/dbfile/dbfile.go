// Package dbfile parses the toolchain's plain-text data files, shared
// by cmd/arc (local evaluation) and cmd/arcserve (the network daemon).
//
// Format: relations as "Name(attr1,attr2)" header lines followed by
// comma-separated rows; "null" is NULL; everything parseable as a number
// is numeric; the rest are strings. Blank lines separate relations, '#'
// starts a comment.
package dbfile

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/relation"
	"repro/internal/value"
)

// Load reads and parses a data file.
func Load(path string) ([]*relation.Relation, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(string(data))
}

// Parse parses data-file text into relations.
func Parse(src string) ([]*relation.Relation, error) {
	var rels []*relation.Relation
	var cur *relation.Relation
	for ln, rawLine := range strings.Split(src, "\n") {
		line := strings.TrimSpace(rawLine)
		if line == "" || strings.HasPrefix(line, "#") {
			cur = nil
			continue
		}
		if cur == nil {
			name, attrs, ok := parseHeader(line)
			if !ok {
				return nil, fmt.Errorf("line %d: expected relation header like R(A,B), got %q", ln+1, line)
			}
			cur = relation.New(name, attrs...)
			rels = append(rels, cur)
			continue
		}
		cells := strings.Split(line, ",")
		if len(cells) != cur.Arity() {
			return nil, fmt.Errorf("line %d: %d values for %d attributes of %s", ln+1, len(cells), cur.Arity(), cur.Name())
		}
		t := make(relation.Tuple, len(cells))
		for i, c := range cells {
			t[i] = parseCell(strings.TrimSpace(c))
		}
		cur.Insert(t)
	}
	return rels, nil
}

func parseHeader(line string) (string, []string, bool) {
	open := strings.IndexByte(line, '(')
	if open <= 0 || !strings.HasSuffix(line, ")") {
		return "", nil, false
	}
	name := strings.TrimSpace(line[:open])
	inner := line[open+1 : len(line)-1]
	var attrs []string
	for _, a := range strings.Split(inner, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			return "", nil, false
		}
		attrs = append(attrs, a)
	}
	return name, attrs, true
}

func parseCell(c string) value.Value {
	if strings.EqualFold(c, "null") {
		return value.Null()
	}
	if i, err := strconv.ParseInt(c, 10, 64); err == nil {
		return value.Int(i)
	}
	if f, err := strconv.ParseFloat(c, 64); err == nil {
		return value.Float(f)
	}
	return value.Str(strings.Trim(c, "'\""))
}

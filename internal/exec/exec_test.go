package exec

import (
	"testing"

	"repro/internal/convention"
	"repro/internal/relation"
	"repro/internal/value"
)

func tup(vals ...any) relation.Tuple {
	t := make(relation.Tuple, len(vals))
	for i, v := range vals {
		t[i] = relation.Lift(v)
	}
	return t
}

func sampleR() *relation.Relation {
	r := relation.New("R", "a", "b")
	r.Add(1, 10).Add(2, 20).Add(2, 20).Add(3, 30).Add(3, 31)
	return r
}

func sampleS() *relation.Relation {
	s := relation.New("S", "b", "c")
	s.Add(10, "x").Add(20, "y").Add(20, "z").Add(40, "w")
	return s
}

func TestScanRoundTrips(t *testing.T) {
	r := sampleR()
	got := Materialize(Scan(r), r.Name(), r.Attrs()...)
	if !got.EqualBag(r) {
		t.Fatalf("scan→materialize lost rows:\n%s\nvs\n%s", got, r)
	}
}

func TestFilter(t *testing.T) {
	r := sampleR()
	got := Materialize(Filter(Scan(r), func(t relation.Tuple, _ int) bool {
		return t[0].AsInt() == 2
	}), "F", "a", "b")
	want := relation.New("F", "a", "b").Add(2, 20).Add(2, 20)
	if !got.EqualBag(want) {
		t.Fatalf("filter: got\n%s\nwant\n%s", got, want)
	}
}

func TestProjectMatchesMaterialized(t *testing.T) {
	r := sampleR()
	got := Materialize(Project(Scan(r), []int{1}), "P", "b")
	want := r.Project("b")
	if !got.EqualBag(want) {
		t.Fatalf("project: got\n%s\nwant\n%s", got, want)
	}
}

func TestDedupMatchesMaterialized(t *testing.T) {
	r := sampleR()
	got := Materialize(Dedup(Scan(r)), "D", "a", "b")
	if !got.EqualBag(r.Dedup()) {
		t.Fatalf("dedup: got\n%s\nwant\n%s", got, r.Dedup())
	}
}

func TestProbe(t *testing.T) {
	r := sampleR()
	got := Collect(Probe(r, []int{0}, []value.Value{value.Int(3)}))
	if len(got) != 2 {
		t.Fatalf("probe a=3: got %d rows, want 2", len(got))
	}
	// Numeric key alignment: probing with 2.0 finds the int-2 rows.
	got = Collect(Probe(r, []int{0}, []value.Value{value.Float(2)}))
	if len(got) != 1 || got[0].Mult != 2 {
		t.Fatalf("probe a=2.0: got %v, want one row with multiplicity 2", got)
	}
}

// nestedLoopJoin is the reference the hash paths must agree with.
func nestedLoopJoin(l, r *relation.Relation, lc, rc []int) []Row {
	var out []Row
	l.Each(func(lt relation.Tuple, lm int) {
		r.Each(func(rt relation.Tuple, rm int) {
			for i := range lc {
				if lt[lc[i]].Key() != rt[rc[i]].Key() {
					return
				}
			}
			joined := append(append(relation.Tuple{}, lt...), rt...)
			out = append(out, Row{Tup: joined, Mult: lm * rm})
		})
	})
	return out
}

func rowsToRel(rows []Row, name string, attrs ...string) *relation.Relation {
	out := relation.New(name, attrs...)
	for _, r := range rows {
		out.InsertMult(r.Tup, r.Mult)
	}
	return out
}

func TestHashJoinMatchesNestedLoop(t *testing.T) {
	r, s := sampleR(), sampleS()
	attrs := []string{"a", "b", "b2", "c"}
	want := rowsToRel(nestedLoopJoin(r, s, []int{1}, []int{0}), "J", attrs...)
	hj := Materialize(HashJoin(Scan(r), []int{1}, Scan(s), []int{0}), "J", attrs...)
	if !hj.EqualBag(want) {
		t.Fatalf("hash join: got\n%s\nwant\n%s", hj, want)
	}
	ij := Materialize(IndexJoin(Scan(r), []int{1}, s, []int{0}), "J", attrs...)
	if !ij.EqualBag(want) {
		t.Fatalf("index join: got\n%s\nwant\n%s", ij, want)
	}
}

func TestSemiAndAntiJoin(t *testing.T) {
	r, s := sampleR(), sampleS()
	semi := Materialize(SemiJoin(Scan(r), []int{1}, s, []int{0}), "SJ", "a", "b")
	wantSemi := relation.New("SJ", "a", "b").Add(1, 10).Add(2, 20).Add(2, 20)
	if !semi.EqualBag(wantSemi) {
		t.Fatalf("semi join: got\n%s\nwant\n%s", semi, wantSemi)
	}
	anti := Materialize(AntiJoin(Scan(r), []int{1}, s, []int{0}), "AJ", "a", "b")
	wantAnti := relation.New("AJ", "a", "b").Add(3, 30).Add(3, 31)
	if !anti.EqualBag(wantAnti) {
		t.Fatalf("anti join: got\n%s\nwant\n%s", anti, wantAnti)
	}
}

func TestGroupAggregate(t *testing.T) {
	r := sampleR()
	got := Materialize(
		GroupAggregate(Scan(r), []int{0}, []Agg{{Func: Sum, Col: 1}, {Func: Count}}, convention.SQL()),
		"G", "a", "sm", "ct")
	want := relation.New("G", "a", "sm", "ct").
		Add(1, 10, 1).Add(2, 40, 2).Add(3, 61, 2)
	if !got.EqualBag(want) {
		t.Fatalf("group aggregate (bag): got\n%s\nwant\n%s", got, want)
	}
	// Set semantics collapses the duplicate (2,20) row's weight.
	gotSet := Materialize(
		GroupAggregate(Scan(r.Dedup()), []int{0}, []Agg{{Func: Sum, Col: 1}, {Func: Count}}, convention.SetLogic()),
		"G", "a", "sm", "ct")
	wantSet := relation.New("G", "a", "sm", "ct").
		Add(1, 10, 1).Add(2, 20, 1).Add(3, 61, 2)
	if !gotSet.EqualBag(wantSet) {
		t.Fatalf("group aggregate (set): got\n%s\nwant\n%s", gotSet, wantSet)
	}
}

func TestGroupAggregateEmptyInput(t *testing.T) {
	empty := relation.New("E", "a", "b")
	// Keyed grouping over zero rows: zero groups.
	keyed := Collect(GroupAggregate(Scan(empty), []int{0}, []Agg{{Func: Count}}, convention.SQL()))
	if len(keyed) != 0 {
		t.Fatalf("keyed γ over empty input: got %d groups, want 0", len(keyed))
	}
	// γ∅: exactly one group, COUNT 0, SUM NULL (or 0 under Soufflé).
	rows := Collect(GroupAggregate(Scan(empty), nil, []Agg{{Func: Count}, {Func: Sum, Col: 1}}, convention.SQL()))
	if len(rows) != 1 || rows[0].Tup[0].AsInt() != 0 || !rows[0].Tup[1].IsNull() {
		t.Fatalf("γ∅ over empty input under SQL: got %v", rows)
	}
	rows = Collect(GroupAggregate(Scan(empty), nil, []Agg{{Func: Sum, Col: 1}}, convention.Souffle()))
	if len(rows) != 1 || rows[0].Tup[0].AsInt() != 0 {
		t.Fatalf("γ∅ over empty input under Soufflé: got %v", rows)
	}
}

func TestEarlyTermination(t *testing.T) {
	r := sampleR()
	n := 0
	for range Scan(r) {
		n++
		if n == 2 {
			break
		}
	}
	if n != 2 {
		t.Fatalf("early break consumed %d rows", n)
	}
}

package exec

import (
	"repro/internal/relation"
	"repro/internal/value"
)

// keyAt extracts the probe key of t at cols.
func keyAt(t relation.Tuple, cols []int) string {
	vals := make([]value.Value, len(cols))
	for i, c := range cols {
		vals[i] = t[c]
	}
	return relation.KeyOf(vals)
}

// HashJoin is the classical equi-join ⋈: it materializes the right stream
// into a hash table keyed on rightCols, then streams the left side,
// emitting left++right concatenated tuples with multiplied weights for
// every key match. Join identity is value.Key (2 matches 2.0; NULL keys
// match NULL keys — callers needing SQL's NULL-never-matches recheck with
// a Filter, as the evaluators' WHERE stages do).
func HashJoin(left Seq, leftCols []int, right Seq, rightCols []int) Seq {
	return func(yield func(relation.Tuple, int) bool) {
		table := map[string][]Row{}
		for t, m := range right {
			k := keyAt(t, rightCols)
			table[k] = append(table[k], Row{Tup: t.Clone(), Mult: m})
		}
		for lt, lm := range left {
			for _, r := range table[keyAt(lt, leftCols)] {
				out := make(relation.Tuple, 0, len(lt)+len(r.Tup))
				out = append(out, lt...)
				out = append(out, r.Tup...)
				if !yield(out, lm*r.Mult) {
					return
				}
			}
		}
	}
}

// IndexJoin streams the left side and probes right's lazy hash index on
// rightCols per row — the indexed nested-loop form of HashJoin that
// reuses (and amortizes across calls) the index the relation caches.
func IndexJoin(left Seq, leftCols []int, right *relation.Relation, rightCols []int) Seq {
	return func(yield func(relation.Tuple, int) bool) {
		vals := make([]value.Value, len(leftCols))
		for lt, lm := range left {
			for i, c := range leftCols {
				vals[i] = lt[c]
			}
			stop := false
			right.Probe(rightCols, vals, func(rt relation.Tuple, rm int) bool {
				out := make(relation.Tuple, 0, len(lt)+len(rt))
				out = append(out, lt...)
				out = append(out, rt...)
				if !yield(out, lm*rm) {
					stop = true
					return false
				}
				return true
			})
			if stop {
				return
			}
		}
	}
}

// SemiJoin streams the left rows that have at least one key match in
// right on the given columns (⋉), preserving left multiplicities — the
// streaming form of the semijoin-like dedup the paper describes for
// nested comprehensions.
func SemiJoin(left Seq, leftCols []int, right *relation.Relation, rightCols []int) Seq {
	return filterByMatch(left, leftCols, right, rightCols, true)
}

// AntiJoin streams the left rows with no key match in right (▷),
// preserving left multiplicities.
func AntiJoin(left Seq, leftCols []int, right *relation.Relation, rightCols []int) Seq {
	return filterByMatch(left, leftCols, right, rightCols, false)
}

func filterByMatch(left Seq, leftCols []int, right *relation.Relation, rightCols []int, want bool) Seq {
	return func(yield func(relation.Tuple, int) bool) {
		vals := make([]value.Value, len(leftCols))
		for lt, lm := range left {
			for i, c := range leftCols {
				vals[i] = lt[c]
			}
			matched := false
			right.Probe(rightCols, vals, func(relation.Tuple, int) bool {
				matched = true
				return false // one witness suffices
			})
			if matched != want {
				continue
			}
			if !yield(lt, lm) {
				return
			}
		}
	}
}

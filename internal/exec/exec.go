// Package exec is the shared physical-execution layer: classical
// relational operators (σ, π, ⋈, γ, dedup) implemented as streaming
// iterators over relation.Relation, composed functionally instead of
// materialize-and-rescan. Equality joins probe the lazy hash indexes that
// Relation maintains per attribute set, so an indexed join is one hash
// lookup per probe row rather than a nested full scan.
//
// All three evaluators lower onto this layer: internal/plan compiles SQL
// blocks into trees of these operators (EquiJoin/OuterHashJoin over
// HashTable, GroupAggregate, Filter, Dedup), internal/eval compiles ARC
// quantifier scopes onto the same pipeline, and internal/datalog drives
// its semi-naive rounds through Scan/Probe. The enumeration fallbacks of
// the evaluators use Scan/Probe directly.
package exec

import (
	"iter"

	"repro/internal/relation"
	"repro/internal/value"
)

// Seq is a stream of distinct tuples with bag multiplicities — the unit
// every operator consumes and produces. Yield returning false stops the
// producer (early termination propagates through compositions).
type Seq = iter.Seq2[relation.Tuple, int]

// Scan streams every distinct tuple of r with its multiplicity, in
// insertion order.
func Scan(r *relation.Relation) Seq {
	return func(yield func(relation.Tuple, int) bool) {
		r.EachWhile(yield)
	}
}

// Probe streams the tuples of r whose values at cols equal vals, via r's
// lazy hash index on cols. With no columns it degenerates to Scan.
func Probe(r *relation.Relation, cols []int, vals []value.Value) Seq {
	return func(yield func(relation.Tuple, int) bool) {
		r.Probe(cols, vals, yield)
	}
}

// RangeScan streams the distinct tuples of r whose value at col lies
// between lo and hi under Compare semantics (a NULL bound leaves that
// side unbounded), in ascending column order, via r's lazy per-column
// ordered index. NULL column values and values incomparable with the
// bounds never match, so the stream is exactly the rows a 3VL filter on
// the consumed range predicate would keep.
func RangeScan(r *relation.Relation, col int, lo, hi value.Value, loIncl, hiIncl bool) Seq {
	return func(yield func(relation.Tuple, int) bool) {
		r.RangeProbe(col, lo, hi, loIncl, hiIncl, yield)
	}
}

// Filter streams the rows of in that keep accepts (σ).
func Filter(in Seq, keep func(relation.Tuple, int) bool) Seq {
	return func(yield func(relation.Tuple, int) bool) {
		for t, m := range in {
			if !keep(t, m) {
				continue
			}
			if !yield(t, m) {
				return
			}
		}
	}
}

// Project streams in projected onto cols (π), keeping bag multiplicities;
// duplicate collapse is a separate Dedup, per the paper's γ reading.
// Projected tuples are freshly allocated, so callers may retain them.
func Project(in Seq, cols []int) Seq {
	return func(yield func(relation.Tuple, int) bool) {
		for t, m := range in {
			out := make(relation.Tuple, len(cols))
			for i, c := range cols {
				out[i] = t[c]
			}
			if !yield(out, m) {
				return
			}
		}
	}
}

// Dedup streams the distinct tuples of in with multiplicity 1, in first-
// occurrence order (the set-semantics reading of the stream).
func Dedup(in Seq) Seq {
	return func(yield func(relation.Tuple, int) bool) {
		seen := map[string]bool{}
		var kb []byte
		for t, _ := range in {
			kb = t.AppendKey(kb[:0])
			if seen[string(kb)] {
				continue
			}
			seen[string(kb)] = true
			if !yield(t, 1) {
				return
			}
		}
	}
}

// Materialize drains in into a fresh relation with the given name and
// attributes, merging multiplicities of equal tuples.
func Materialize(in Seq, name string, attrs ...string) *relation.Relation {
	out := relation.New(name, attrs...)
	for t, m := range in {
		out.InsertMult(t, m)
	}
	return out
}

// Collect drains in into a slice of (tuple, multiplicity) pairs. Tuples
// are cloned, so the result is safe to retain.
func Collect(in Seq) []Row {
	var out []Row
	for t, m := range in {
		out = append(out, Row{Tup: t.Clone(), Mult: m})
	}
	return out
}

// Row is one collected stream element.
type Row struct {
	Tup  relation.Tuple
	Mult int
}

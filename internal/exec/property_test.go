package exec

import (
	"fmt"
	"testing"

	"repro/internal/convention"
	"repro/internal/relation"
	"repro/internal/value"
	"repro/internal/workload"
)

// TestStreamingEqualsMaterialized is the layer's property test: for random
// instances, every streaming operator must be bag-equal (under
// convention.SQL()) and set-equal (under convention.SetLogic()) to the
// corresponding materialized relation operation or nested-loop reference.
func TestStreamingEqualsMaterialized(t *testing.T) {
	convs := map[string]convention.Conventions{
		"SetLogic": convention.SetLogic(),
		"SQL":      convention.SQL(),
	}
	for name, conv := range convs {
		t.Run(name, func(t *testing.T) {
			for trial := 0; trial < 30; trial++ {
				rng := workload.Rand(int64(1000 + trial))
				n := 5 + rng.Intn(60)
				r := workload.RandomBinary(rng, "R", "a", "b", n, n/2+1, n/3+1)
				s := workload.RandomBinary(rng, "S", "b", "c", n, n/3+1, 4)
				if conv.Semantics == convention.Set {
					r, s = r.Dedup(), s.Dedup()
				}

				// π: streaming project vs relation.Project.
				check(t, trial, "project", conv,
					Materialize(Project(Scan(r), []int{1}), "P", "b"), r.Project("b"))

				// dedup: streaming vs relation.Dedup.
				check(t, trial, "dedup", conv,
					Materialize(Dedup(Scan(r)), "D", "a", "b"), r.Dedup())

				// σ: streaming filter vs a manual materialized filter.
				wantF := relation.New("F", "a", "b")
				r.Each(func(tp relation.Tuple, m int) {
					if tp[0].AsInt()%2 == 0 {
						wantF.InsertMult(tp, m)
					}
				})
				check(t, trial, "filter", conv,
					Materialize(Filter(Scan(r), func(tp relation.Tuple, _ int) bool {
						return tp[0].AsInt()%2 == 0
					}), "F", "a", "b"), wantF)

				// ⋈: hash join and index join vs nested-loop reference.
				attrs := []string{"a", "b", "b2", "c"}
				wantJ := rowsToRel(nestedLoopJoin(r, s, []int{1}, []int{0}), "J", attrs...)
				check(t, trial, "hash-join", conv,
					Materialize(HashJoin(Scan(r), []int{1}, Scan(s), []int{0}), "J", attrs...), wantJ)
				check(t, trial, "index-join", conv,
					Materialize(IndexJoin(Scan(r), []int{1}, s, []int{0}), "J", attrs...), wantJ)

				// ⋉ / ▷ vs reference membership test.
				wantSemi := relation.New("SJ", "a", "b")
				wantAnti := relation.New("AJ", "a", "b")
				r.Each(func(tp relation.Tuple, m int) {
					matched := false
					s.Each(func(st relation.Tuple, _ int) {
						if st[0].Key() == tp[1].Key() {
							matched = true
						}
					})
					if matched {
						wantSemi.InsertMult(tp, m)
					} else {
						wantAnti.InsertMult(tp, m)
					}
				})
				check(t, trial, "semi-join", conv,
					Materialize(SemiJoin(Scan(r), []int{1}, s, []int{0}), "SJ", "a", "b"), wantSemi)
				check(t, trial, "anti-join", conv,
					Materialize(AntiJoin(Scan(r), []int{1}, s, []int{0}), "AJ", "a", "b"), wantAnti)

				// γ: streaming group/aggregate vs a reference fold.
				check(t, trial, "group-agg", conv,
					Materialize(GroupAggregate(Scan(r), []int{0},
						[]Agg{{Func: Count}, {Func: Sum, Col: 1}, {Func: Min, Col: 1}, {Func: Max, Col: 1}}, conv),
						"G", "a", "ct", "sm", "mn", "mx"),
					referenceGroup(r, conv))
			}
		})
	}
}

// check asserts bag equality under bag semantics and set equality under
// set semantics.
func check(t *testing.T, trial int, op string, conv convention.Conventions, got, want *relation.Relation) {
	t.Helper()
	ok := got.EqualBag(want)
	if conv.Semantics == convention.Set {
		ok = got.EqualSet(want)
	}
	if !ok {
		t.Fatalf("trial %d: %s diverged under %s:\ngot\n%s\nwant\n%s", trial, op, conv, got, want)
	}
}

// referenceGroup computes count/sum/min/max per key with plain loops.
func referenceGroup(r *relation.Relation, conv convention.Conventions) *relation.Relation {
	type st struct {
		count    int
		sum      int64
		min, max value.Value
		any      bool
	}
	states := map[string]*st{}
	keys := map[string]value.Value{}
	var order []string
	r.Each(func(tp relation.Tuple, m int) {
		w := m
		if conv.Semantics == convention.Set {
			w = 1
		}
		k := tp[0].Key()
		g := states[k]
		if g == nil {
			g = &st{}
			states[k] = g
			keys[k] = tp[0]
			order = append(order, k)
		}
		v := tp[1]
		g.count += w
		g.sum += v.AsInt() * int64(w)
		if !g.any || v.Less(g.min) {
			g.min = v
		}
		if !g.any || g.max.Less(v) {
			g.max = v
		}
		g.any = true
	})
	out := relation.New("G", "a", "ct", "sm", "mn", "mx")
	for _, k := range order {
		g := states[k]
		out.Insert(relation.Tuple{keys[k], value.Int(int64(g.count)), value.Int(g.sum), g.min, g.max})
	}
	return out
}

// TestPropertySeedDeterminism guards the trial loop against accidental
// nondeterminism in the harness itself.
func TestPropertySeedDeterminism(t *testing.T) {
	a := workload.RandomBinary(workload.Rand(7), "R", "a", "b", 20, 5, 5)
	b := workload.RandomBinary(workload.Rand(7), "R", "a", "b", 20, 5, 5)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("workload generator is not deterministic")
	}
}

package exec

import (
	"fmt"

	"repro/internal/convention"
	"repro/internal/relation"
	"repro/internal/value"
)

// AggFunc enumerates the aggregate functions γ supports.
type AggFunc int

const (
	// Count counts input rows (with bag weight under bag semantics).
	Count AggFunc = iota
	// CountDistinct counts distinct non-NULL values of the column.
	CountDistinct
	// Sum adds the column (NULL inputs skipped, SQL style).
	Sum
	// Avg is the mean of the non-NULL column values.
	Avg
	// Min is the least non-NULL column value.
	Min
	// Max is the greatest non-NULL column value.
	Max
	// CountCol counts non-NULL values of the column (SQL count(col),
	// where Count is count(*)).
	CountCol
)

// String names the function for error messages.
func (f AggFunc) String() string {
	switch f {
	case Count:
		return "count"
	case CountDistinct:
		return "count-distinct"
	case Sum:
		return "sum"
	case Avg:
		return "avg"
	case Min:
		return "min"
	case Max:
		return "max"
	case CountCol:
		return "count-col"
	}
	return fmt.Sprintf("agg(%d)", int(f))
}

// Agg is one aggregate column of a γ: Func applied to input column Col
// (Col is ignored for Count, which counts rows).
type Agg struct {
	Func AggFunc
	Col  int
}

// aggState accumulates one aggregate over one group.
type aggState struct {
	sum      value.Value
	min, max value.Value
	count    int
	distinct map[string]bool
	haveAny  bool
}

// GroupAggregate is γ: it partitions in by the values at keyCols and
// streams one output tuple per group — the key values followed by one
// value per aggregate. Grouping is hash-based and the input is fully
// consumed before the first group is emitted (γ is a pipeline breaker).
// Conventions apply as in the rest of the repository: set semantics
// collapses bag weights to 1, and EmptyAggregate picks SUM's value over
// zero rows. With no key columns the operator emits exactly one group
// even over empty input (the SQL "group by true" behaviour); keyed
// grouping over empty input emits nothing.
func GroupAggregate(in Seq, keyCols []int, aggs []Agg, conv convention.Conventions) Seq {
	return func(yield func(relation.Tuple, int) bool) {
		type grp struct {
			key    relation.Tuple
			states []aggState
		}
		newStates := func() []aggState {
			sts := make([]aggState, len(aggs))
			for i := range sts {
				if aggs[i].Func == CountDistinct {
					sts[i].distinct = map[string]bool{}
				}
			}
			return sts
		}
		index := map[string]int{}
		var groups []*grp
		if len(keyCols) == 0 {
			groups = append(groups, &grp{key: relation.Tuple{}, states: newStates()})
		}
		var kb []byte
		for t, m := range in {
			w := m
			if conv.Semantics == convention.Set {
				w = 1
			}
			var g *grp
			if len(keyCols) == 0 {
				g = groups[0]
			} else {
				kb = kb[:0]
				for _, c := range keyCols {
					kb = t[c].AppendKey(kb)
					kb = append(kb, '\x1f')
				}
				i, ok := index[string(kb)]
				if !ok {
					key := make(relation.Tuple, len(keyCols))
					for j, c := range keyCols {
						key[j] = t[c]
					}
					i = len(groups)
					index[string(kb)] = i
					groups = append(groups, &grp{key: key, states: newStates()})
				}
				g = groups[i]
			}
			for i, a := range aggs {
				g.states[i].observe(a, t, w)
			}
		}
		for _, g := range groups {
			out := make(relation.Tuple, 0, len(g.key)+len(aggs))
			out = append(out, g.key...)
			for i, a := range aggs {
				out = append(out, g.states[i].result(a, conv))
			}
			if !yield(out, 1) {
				return
			}
		}
	}
}

// observe folds one weighted input row into the state, maintaining only
// what the aggregate function needs.
func (st *aggState) observe(a Agg, t relation.Tuple, w int) {
	if a.Func == Count {
		st.count += w
		st.haveAny = true
		return
	}
	v := t[a.Col]
	if v.IsNull() {
		return // SQL aggregates ignore NULL inputs
	}
	st.count += w
	switch a.Func {
	case CountCol:
		st.haveAny = true
	case CountDistinct:
		st.distinct[v.Key()] = true
		st.haveAny = true
	case Sum, Avg:
		contrib := v
		if w > 1 {
			if c, ok := value.Mul(v, value.Int(int64(w))); ok {
				contrib = c
			}
		}
		if !st.haveAny {
			st.sum = contrib
			st.haveAny = true
			return
		}
		if s, ok := value.Add(st.sum, contrib); ok {
			st.sum = s
		}
	case Min:
		if !st.haveAny {
			st.min = v
			st.haveAny = true
			return
		}
		if c, ok := v.Compare(st.min); ok && c < 0 {
			st.min = v
		}
	case Max:
		if !st.haveAny {
			st.max = v
			st.haveAny = true
			return
		}
		if c, ok := v.Compare(st.max); ok && c > 0 {
			st.max = v
		}
	}
}

// result finalizes the state into the aggregate's output value.
func (st *aggState) result(a Agg, conv convention.Conventions) value.Value {
	switch a.Func {
	case Count, CountCol:
		return value.Int(int64(st.count))
	case CountDistinct:
		return value.Int(int64(len(st.distinct)))
	case Sum:
		if !st.haveAny {
			if conv.EmptyAggregate == convention.ZeroOnEmpty {
				return value.Int(0)
			}
			return value.Null()
		}
		return st.sum
	case Avg:
		if !st.haveAny {
			return value.Null()
		}
		v, _ := value.Div(value.Float(st.sum.AsFloat()), value.Int(int64(st.count)))
		return v
	case Min:
		if !st.haveAny {
			return value.Null()
		}
		return st.min
	case Max:
		if !st.haveAny {
			return value.Null()
		}
		return st.max
	}
	return value.Null()
}

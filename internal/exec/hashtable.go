package exec

import (
	"repro/internal/relation"
	"repro/internal/trace"
	"repro/internal/value"
)

// HashTable is a materialized, hash-indexed build side for tuple joins:
// the planner's unit of join compilation. Rows are bucketed by the
// value.Key of their key columns; rows whose key contains a value that is
// not Indexable (integral numerics beyond 2^53, where Key identity is
// finer than Eq) go to an overflow list that every lookup scans, so a
// candidate set is complete under Eq even where hashing is not.
// Candidates are a superset of the Eq matches — callers re-check with
// EqMatch (strict 3VL True, so NULL keys never join).
type HashTable struct {
	cols     []int
	rows     []Row
	buckets  map[string][]int
	overflow []int
	arity    int
}

// BuildHashTable drains in into a hash table keyed on cols. arity is the
// tuple width of the build side (needed for null-extension when the input
// is empty).
func BuildHashTable(in Seq, cols []int, arity int) *HashTable {
	ht := &HashTable{
		cols:    append([]int(nil), cols...),
		buckets: map[string][]int{},
		arity:   arity,
	}
	for t, m := range in {
		slot := len(ht.rows)
		ht.rows = append(ht.rows, Row{Tup: t.Clone(), Mult: m})
		indexable := true
		for _, c := range cols {
			if !t[c].Indexable() {
				indexable = false
				break
			}
		}
		if indexable {
			k := keyAt(t, cols)
			ht.buckets[k] = append(ht.buckets[k], slot)
		} else {
			ht.overflow = append(ht.overflow, slot)
		}
	}
	return ht
}

// Len returns the number of distinct build rows.
func (ht *HashTable) Len() int { return len(ht.rows) }

// Arity returns the build-side tuple width.
func (ht *HashTable) Arity() int { return ht.arity }

// Rows returns the build rows in build order (callers must not mutate).
func (ht *HashTable) Rows() []Row { return ht.rows }

// Candidates calls f with (slot, row) for every build row that may
// Eq-match vals on the key columns: the Key bucket plus the overflow list
// when every probe value is indexable, or every row otherwise. With no
// key columns every row is a candidate (the cross-join degenerate case).
// f returning false stops the enumeration.
func (ht *HashTable) Candidates(vals []value.Value, f func(slot int, r Row) bool) {
	if len(ht.cols) == 0 {
		for i, r := range ht.rows {
			if !f(i, r) {
				return
			}
		}
		return
	}
	for _, v := range vals {
		if !v.Indexable() {
			for i, r := range ht.rows {
				if !f(i, r) {
					return
				}
			}
			return
		}
	}
	var kb [64]byte
	for _, i := range ht.buckets[string(relation.Tuple(vals).AppendKey(kb[:0]))] {
		if !f(i, ht.rows[i]) {
			return
		}
	}
	for _, i := range ht.overflow {
		if !f(i, ht.rows[i]) {
			return
		}
	}
}

// EqMatch reports whether row r's key columns all strictly equal vals
// under 3VL (Eq must be True, so NULLs never match — SQL join identity,
// unlike the Key identity HashJoin uses).
func (ht *HashTable) EqMatch(r Row, vals []value.Value) bool {
	for i, c := range ht.cols {
		if value.Eq.Apply(r.Tup[c], vals[i]) != value.True {
			return false
		}
	}
	return true
}

// valsAt extracts the probe key of t at cols into dst.
func valsAt(t relation.Tuple, cols []int, dst []value.Value) []value.Value {
	dst = dst[:0]
	for _, c := range cols {
		dst = append(dst, t[c])
	}
	return dst
}

// concatNull builds left ++ right where either side may be nil, in which
// case it is replaced by arity NULLs (outer-join null extension).
func concatNull(left relation.Tuple, leftArity int, right relation.Tuple, rightArity int) relation.Tuple {
	out := make(relation.Tuple, 0, leftArity+rightArity)
	if left == nil {
		for i := 0; i < leftArity; i++ {
			out = append(out, value.Null())
		}
	} else {
		out = append(out, left...)
	}
	if right == nil {
		for i := 0; i < rightArity; i++ {
			out = append(out, value.Null())
		}
	} else {
		out = append(out, right...)
	}
	return out
}

// EquiJoin streams the strict-equality hash join of left against ht:
// left ++ right concatenations for every candidate whose key columns
// Eq-match (3VL True) the left row's values at leftCols, optionally
// filtered by the residual on predicate over the concatenated tuple.
// Unlike HashJoin, NULL keys never match and Eq-vs-Key divergence beyond
// 2^53 is handled by ht's overflow list.
func EquiJoin(left Seq, leftCols []int, ht *HashTable, on func(relation.Tuple) bool) Seq {
	return equiJoin(left, leftCols, ht, on, nil)
}

// EquiJoinTraced is EquiJoin with per-probe-row hit/miss counting into
// op: a probe row with at least one surviving match (post-residual)
// counts as a hit, otherwise as a miss.
func EquiJoinTraced(left Seq, leftCols []int, ht *HashTable, on func(relation.Tuple) bool, op *trace.Op) Seq {
	return equiJoin(left, leftCols, ht, on, op)
}

func equiJoin(left Seq, leftCols []int, ht *HashTable, on func(relation.Tuple) bool, op *trace.Op) Seq {
	return func(yield func(relation.Tuple, int) bool) {
		vals := make([]value.Value, 0, len(leftCols))
		for lt, lm := range left {
			vals = valsAt(lt, leftCols, vals)
			stop := false
			any := false
			ht.Candidates(vals, func(_ int, r Row) bool {
				if !ht.EqMatch(r, vals) {
					return true
				}
				out := concatNull(lt, len(lt), r.Tup, ht.arity)
				if on != nil && !on(out) {
					return true
				}
				any = true
				if !yield(out, lm*r.Mult) {
					stop = true
					return false
				}
				return true
			})
			if op != nil {
				if any {
					op.ProbeHits++
				} else {
					op.ProbeMisses++
				}
			}
			if stop {
				return
			}
		}
	}
}

// OuterHashJoin streams the left-outer (full=false) or full-outer
// (full=true) hash join of left against ht. A left row joins every
// candidate whose keys Eq-match and whose concatenated tuple passes the
// residual on predicate (nil = always); rows with no match null-extend
// the build side. Under full=true, unmatched build rows are emitted
// null-extended on the probe side after the probe input drains.
func OuterHashJoin(left Seq, leftCols []int, ht *HashTable, on func(relation.Tuple) bool, full bool, leftArity int) Seq {
	return outerHashJoin(left, leftCols, ht, on, full, leftArity, nil)
}

// OuterHashJoinTraced is OuterHashJoin with per-probe-row hit/miss
// counting into op (a null-extended probe row counts as a miss).
func OuterHashJoinTraced(left Seq, leftCols []int, ht *HashTable, on func(relation.Tuple) bool, full bool, leftArity int, op *trace.Op) Seq {
	return outerHashJoin(left, leftCols, ht, on, full, leftArity, op)
}

func outerHashJoin(left Seq, leftCols []int, ht *HashTable, on func(relation.Tuple) bool, full bool, leftArity int, op *trace.Op) Seq {
	return func(yield func(relation.Tuple, int) bool) {
		var matched []bool
		if full {
			matched = make([]bool, len(ht.rows))
		}
		vals := make([]value.Value, 0, len(leftCols))
		for lt, lm := range left {
			vals = valsAt(lt, leftCols, vals)
			any := false
			stop := false
			ht.Candidates(vals, func(slot int, r Row) bool {
				if !ht.EqMatch(r, vals) {
					return true
				}
				out := concatNull(lt, len(lt), r.Tup, ht.arity)
				if on != nil && !on(out) {
					return true
				}
				any = true
				if full {
					matched[slot] = true
				}
				if !yield(out, lm*r.Mult) {
					stop = true
					return false
				}
				return true
			})
			if op != nil {
				if any {
					op.ProbeHits++
				} else {
					op.ProbeMisses++
				}
			}
			if stop {
				return
			}
			if !any {
				if !yield(concatNull(lt, len(lt), nil, ht.arity), lm) {
					return
				}
			}
		}
		if full {
			for slot, r := range ht.rows {
				if matched[slot] {
					continue
				}
				if !yield(concatNull(nil, leftArity, r.Tup, ht.arity), r.Mult) {
					return
				}
			}
		}
	}
}

package exec

import (
	"testing"

	"repro/internal/convention"

	"repro/internal/relation"
	"repro/internal/value"
)

func ht2(t *testing.T, rel *relation.Relation, cols ...int) *HashTable {
	t.Helper()
	return BuildHashTable(Scan(rel), cols, rel.Arity())
}

func TestEquiJoinStrictEquality(t *testing.T) {
	left := relation.New("L", "a").Add(1).Add(nil).Add(2)
	right := relation.New("R", "b").Add(1).Add(nil).Add(1)
	ht := ht2(t, right, 0)
	rows := Collect(EquiJoin(Scan(left), []int{0}, ht, nil))
	// Only 1=1 matches (twice via the bag weight of... distinct rows: 1
	// appears twice → merged to mult 2 at build).
	total := 0
	for _, r := range rows {
		if r.Tup[0].IsNull() || r.Tup[1].IsNull() {
			t.Fatalf("NULL key joined: %v", r.Tup)
		}
		total += r.Mult
	}
	if total != 2 {
		t.Fatalf("want weight-2 match for key 1, got rows %v", rows)
	}
}

func TestEquiJoinResidual(t *testing.T) {
	left := relation.New("L", "a", "x").Add(1, 10).Add(1, 20)
	right := relation.New("R", "b", "y").Add(1, 10).Add(1, 99)
	ht := ht2(t, right, 0)
	rows := Collect(EquiJoin(Scan(left), []int{0}, ht, func(t relation.Tuple) bool {
		return value.Eq.Apply(t[1], t[3]) == value.True
	}))
	if len(rows) != 1 || rows[0].Tup[1].AsInt() != 10 {
		t.Fatalf("residual filter failed: %v", rows)
	}
}

func TestOuterHashJoinLeft(t *testing.T) {
	left := relation.New("L", "a").Add(1).Add(2).Add(3)
	right := relation.New("R", "b", "c").Add(2, 20).Add(3, 30)
	ht := ht2(t, right, 0)
	got := Materialize(OuterHashJoin(Scan(left), []int{0}, ht, nil, false, 1), "J", "a", "b", "c")
	want := relation.New("J", "a", "b", "c").
		Add(1, nil, nil).Add(2, 2, 20).Add(3, 3, 30)
	if !got.EqualBag(want) {
		t.Fatalf("left join mismatch:\n%s\nwant:\n%s", got, want)
	}
}

func TestOuterHashJoinFull(t *testing.T) {
	left := relation.New("L", "a").Add(1).Add(2)
	right := relation.New("R", "b").Add(2).Add(3)
	ht := ht2(t, right, 0)
	got := Materialize(OuterHashJoin(Scan(left), []int{0}, ht, nil, true, 1), "J", "a", "b")
	want := relation.New("J", "a", "b").Add(1, nil).Add(2, 2).Add(nil, 3)
	if !got.EqualBag(want) {
		t.Fatalf("full join mismatch:\n%s\nwant:\n%s", got, want)
	}
}

func TestOuterHashJoinFullResidualKeepsUnmatched(t *testing.T) {
	// A residual that rejects every pair must surface both sides
	// null-extended (the FULL-join guard of the evaluators).
	left := relation.New("L", "a").Add(1)
	right := relation.New("R", "b").Add(1)
	ht := ht2(t, right, 0)
	got := Materialize(OuterHashJoin(Scan(left), []int{0}, ht,
		func(relation.Tuple) bool { return false }, true, 1), "J", "a", "b")
	want := relation.New("J", "a", "b").Add(1, nil).Add(nil, 1)
	if !got.EqualBag(want) {
		t.Fatalf("full join residual mismatch:\n%s\nwant:\n%s", got, want)
	}
}

func TestHashTableOverflowBeyond2p53(t *testing.T) {
	// 2^60 as int and as float are Eq-equal but Key-distinct; the
	// overflow list must keep the candidate reachable.
	big := int64(1) << 60
	build := relation.New("B", "x").Add(value.Float(float64(big)))
	ht := ht2(t, build, 0)
	probe := []value.Value{value.Int(big)}
	found := false
	ht.Candidates(probe, func(_ int, r Row) bool {
		if ht.EqMatch(r, probe) {
			found = true
		}
		return true
	})
	if !found {
		t.Fatal("overflow candidate not found for non-indexable key")
	}
}

func TestHashTableCrossJoinDegenerate(t *testing.T) {
	build := relation.New("B", "x").Add(1).Add(2)
	ht := ht2(t, build)
	n := 0
	ht.Candidates(nil, func(int, Row) bool { n++; return true })
	if n != 2 {
		t.Fatalf("zero-column candidates = %d, want 2", n)
	}
}

func TestCountColSkipsNulls(t *testing.T) {
	r := relation.New("R", "a", "b").Add(1, 1).Add(1, nil).Add(1, 2)
	rows := Collect(GroupAggregate(Scan(r), []int{0},
		[]Agg{{Func: Count}, {Func: CountCol, Col: 1}}, convention.SQL()))
	if len(rows) != 1 {
		t.Fatalf("want one group, got %v", rows)
	}
	if rows[0].Tup[1].AsInt() != 3 || rows[0].Tup[2].AsInt() != 2 {
		t.Fatalf("count(*)=%v count(col)=%v, want 3 and 2", rows[0].Tup[1], rows[0].Tup[2])
	}
}

// Package repro holds the top-level benchmark harness: one benchmark per
// paper experiment (E01–E21, regenerating each figure-level claim per
// iteration) plus scaling micro-benchmarks for the substrates (parsers,
// the ARC evaluator, the SQL baseline evaluator, Datalog fixpoints,
// recursion depth, and matrix multiplication).
package repro

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/arc"
	"repro/internal/convention"
	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/engine"
	"repro/internal/eval"
	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/pattern"
	"repro/internal/qgen"
	"repro/internal/relation"
	"repro/internal/relpat"
	"repro/internal/rewrite"
	"repro/internal/sql"
	"repro/internal/sql2arc"
	"repro/internal/sqleval"
	"repro/internal/storage"
	"repro/internal/value"
	"repro/internal/workload"
)

// benchExperiment reruns one full experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Pass {
			b.Fatalf("%s failed: %s", id, rep.Measured)
		}
	}
}

func BenchmarkE01Fig2TRC(b *testing.B)            { benchExperiment(b, "E01") }
func BenchmarkE02Fig3Lateral(b *testing.B)        { benchExperiment(b, "E02") }
func BenchmarkE03Fig4FIO(b *testing.B)            { benchExperiment(b, "E03") }
func BenchmarkE04Fig5FOI(b *testing.B)            { benchExperiment(b, "E04") }
func BenchmarkE05Fig6MultiAgg(b *testing.B)       { benchExperiment(b, "E05") }
func BenchmarkE06Fig7Hella(b *testing.B)          { benchExperiment(b, "E06") }
func BenchmarkE07Fig8Rel(b *testing.B)            { benchExperiment(b, "E07") }
func BenchmarkE08Fig9Boolean(b *testing.B)        { benchExperiment(b, "E08") }
func BenchmarkE09Fig10Recursion(b *testing.B)     { benchExperiment(b, "E09") }
func BenchmarkE10Fig11NotIn(b *testing.B)         { benchExperiment(b, "E10") }
func BenchmarkE11Fig12OuterJoin(b *testing.B)     { benchExperiment(b, "E11") }
func BenchmarkE12Fig13ScalarLateral(b *testing.B) { benchExperiment(b, "E12") }
func BenchmarkE13Fig15External(b *testing.B)      { benchExperiment(b, "E13") }
func BenchmarkE14Fig16UniqueSet(b *testing.B)     { benchExperiment(b, "E14") }
func BenchmarkE15Fig20MatMul(b *testing.B)        { benchExperiment(b, "E15") }
func BenchmarkE16Fig21CountBug(b *testing.B)      { benchExperiment(b, "E16") }
func BenchmarkE17Conventions(b *testing.B)        { benchExperiment(b, "E17") }
func BenchmarkE18SetBag(b *testing.B)             { benchExperiment(b, "E18") }
func BenchmarkE19TRCNormalize(b *testing.B)       { benchExperiment(b, "E19") }
func BenchmarkE20Validator(b *testing.B)          { benchExperiment(b, "E20") }
func BenchmarkE21Modality(b *testing.B)           { benchExperiment(b, "E21") }

// --- Substrate micro-benchmarks -------------------------------------------

func BenchmarkARCParser(b *testing.B) {
	const src = "{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm) | ∃r2 ∈ R, γ ∅ [r2.A = r.A ∧ X.sm = sum(r2.B)]} [Q.A = r.A ∧ Q.sm = x.sm]}"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := arc.ParseCollection(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSQLParser(b *testing.B) {
	const src = `select R.dept, avg(S.sal) av from R, S
		where R.empl = S.empl group by R.dept having sum(S.sal) > 100`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sql.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSQL2ARC(b *testing.B) {
	q := sql.MustParse(`select R.id from R,
		(select R2.id, count(S.d) as ct from R R2 left join S on R2.id = S.id group by R2.id) as X
		where R.q = X.ct and R.id = X.id`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sql2arc.Translate(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvalJoin scales the select-project-join of query (1).
func BenchmarkEvalJoin(b *testing.B) {
	for _, n := range []int{50, 200, 800} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := workload.Rand(1)
			r := workload.RandomBinary(rng, "R", "A", "B", n, n/2, n/4)
			s := workload.RandomBinary(rng, "S", "B", "C", n, n/4, 3)
			col := arc.MustParseCollection(
				"{Q(A) | ∃r ∈ R, s ∈ S [Q.A = r.A ∧ r.B = s.B ∧ s.C = 0]}")
			cat := eval.NewCatalog().AddRelation(r).AddRelation(s)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eval.Eval(col, cat, convention.SQL()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEvalGroupBy scales the FIO grouped aggregate (3).
func BenchmarkEvalGroupBy(b *testing.B) {
	for _, n := range []int{100, 1000, 5000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := workload.Rand(2)
			r := workload.RandomBinary(rng, "R", "A", "B", n, n/10, 100)
			col := arc.MustParseCollection(
				"{Q(A, sm) | ∃r ∈ R, γ r.A [Q.A = r.A ∧ Q.sm = sum(r.B)]}")
			cat := eval.NewCatalog().AddRelation(r)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eval.Eval(col, cat, convention.SQL()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFOIvsFIO is the ablation DESIGN.md calls out: the same grouped
// aggregate evaluated through the FIO single-scope plan (3) vs the FOI
// per-outer-tuple plan (7). FOI re-evaluates the inner collection per
// outer tuple — quadratic where FIO is linear; the crossover shape is the
// point, not the constants.
func BenchmarkFOIvsFIO(b *testing.B) {
	for _, n := range []int{50, 200} {
		rng := workload.Rand(3)
		r := workload.RandomBinary(rng, "R", "A", "B", n, n/5, 50)
		cat := eval.NewCatalog().AddRelation(r)
		fio := arc.MustParseCollection(
			"{Q(A, sm) | ∃r ∈ R, γ r.A [Q.A = r.A ∧ Q.sm = sum(r.B)]}")
		foi := arc.MustParseCollection(
			"{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm) | ∃r2 ∈ R, γ ∅ [r2.A = r.A ∧ X.sm = sum(r2.B)]} [Q.A = r.A ∧ Q.sm = x.sm]}")
		b.Run(fmt.Sprintf("FIO/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eval.Eval(fio, cat, convention.SQLDistinct()); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("FOI/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eval.Eval(foi, cat, convention.SQLDistinct()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRecursion scales transitive closure over chains.
func BenchmarkRecursion(b *testing.B) {
	col := arc.MustParseCollection(
		"{A(s, t) | ∃p ∈ P [A.s = p.s ∧ A.t = p.t] ∨ ∃p ∈ P, a2 ∈ A [A.s = p.s ∧ p.t = a2.s ∧ A.t = a2.t]}")
	for _, n := range []int{10, 25, 50} {
		p := workload.Chain(n)
		cat := eval.NewCatalog().AddRelation(p)
		b.Run(fmt.Sprintf("ARC/chain=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eval.Eval(col, cat, convention.SetLogic()); err != nil {
					b.Fatal(err)
				}
			}
		})
		prog := datalog.MustParse("A(x,y) :- P(x,y). A(x,y) :- P(x,z), A(z,y).")
		b.Run(fmt.Sprintf("Datalog/chain=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := datalog.EvalPredicate(prog, datalog.EDB{"P": p}, "A"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSQLRecursiveCTE scales WITH RECURSIVE transitive closure
// through the fixpoint-engine plan path and the independent reference
// iteration — the SQL face of the shared recursion engine.
func BenchmarkSQLRecursiveCTE(b *testing.B) {
	q := sql.MustParse(`with recursive tc(s, t) as (
		select P.s, P.t from P
		union
		select tc.s, P.t from tc, P where tc.t = P.s
	) select tc.s, tc.t from tc`)
	for _, n := range []int{25, 50} {
		db := sqleval.NewDB(workload.Chain(n))
		b.Run(fmt.Sprintf("plan/chain=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sqleval.EvalMode(q, db, sqleval.PlanForce); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("reference/chain=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sqleval.EvalMode(q, db, sqleval.PlanOff); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPreparedVsReparse pins the engine's compile-once contract: a
// parameterized point lookup executed through one prepared statement
// (bind $1, probe, stream) against the re-parse-and-re-plan-per-call
// shape the pre-engine entry points had. The acceptance bar is ≥ 5×;
// see also the ratio test in internal/engine.
func BenchmarkPreparedVsReparse(b *testing.B) {
	rng := workload.Rand(21)
	r := workload.RandomBinary(rng, "R", "A", "B", 20000, 20000, 64)
	db := engine.Open(r)
	stmt, err := db.Prepare(engine.LangSQL, "select R.A, R.B from R where R.A = $1")
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.Run("prepared", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := stmt.QueryAll(ctx, i%20000); err != nil {
				b.Fatal(err)
			}
		}
	})
	sdb := sqleval.DB{"R": r}
	b.Run("reparse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			src := fmt.Sprintf("select R.A, R.B from R where R.A = %d", i%20000)
			if _, err := sqleval.EvalString(src, sdb); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTracedVsUntraced pins the observability overhead contract:
// tracing disabled costs nothing (the untraced cursor path is the same
// with or without the trace package compiled in), and tracing enabled
// stays within small-constant-factor territory on a point query — both
// shapes drain the same prepared statement through a streaming cursor.
func BenchmarkTracedVsUntraced(b *testing.B) {
	rng := workload.Rand(23)
	r := workload.RandomBinary(rng, "R", "A", "B", 20000, 20000, 64)
	db := engine.Open(r)
	stmt, err := db.Prepare(engine.LangSQL, "select R.A, R.B from R where R.A = $1")
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.Run("untraced", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rows, err := stmt.Query(ctx, i%20000)
			if err != nil {
				b.Fatal(err)
			}
			for rows.Next() {
			}
			if err := rows.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("traced", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rows, _, err := stmt.QueryTraced(ctx, i%20000)
			if err != nil {
				b.Fatal(err)
			}
			for rows.Next() {
			}
			if err := rows.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkConcurrentSessions measures N goroutines sharing one DB and
// one prepared statement — the race-safe concurrent-session contract
// under load (indexes, plan, and statement cache all shared).
func BenchmarkConcurrentSessions(b *testing.B) {
	rng := workload.Rand(22)
	r := workload.RandomBinary(rng, "R", "A", "B", 20000, 20000, 64)
	db := engine.Open(r)
	stmt, err := db.Prepare(engine.LangSQL, "select R.A, R.B from R where R.A = $1")
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.SetParallelism(2) // ≥ 8 sessions on a 4-core runner
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := stmt.QueryAll(ctx, (i*131)%20000); err != nil {
				// b.Fatal must not run on a RunParallel worker goroutine.
				b.Error(err)
				return
			}
			i++
		}
	})
}

// BenchmarkInsertThroughput measures the write path per inserted row:
// autocommit (one copy-on-write commit per statement) against batched
// transactions (one commit per 256 rows). The table is cleared whenever
// it reaches 4096 rows so the copy-on-write clone cost stays bounded
// and per-op numbers are comparable across b.N.
func BenchmarkInsertThroughput(b *testing.B) {
	ctx := context.Background()
	const resetAt = 4096
	b.Run("autocommit", func(b *testing.B) {
		db := engine.Open(relation.New("R", "A", "B"))
		stmt, err := db.Prepare(engine.LangSQL, "insert into R values ($1, $2)")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		rows := 0
		for i := 0; i < b.N; i++ {
			if _, err := stmt.Exec(ctx, i, i); err != nil {
				b.Fatal(err)
			}
			if rows++; rows >= resetAt {
				rows = 0
				if _, err := db.Exec(ctx, engine.LangSQL, "delete from R"); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("tx256", func(b *testing.B) {
		db := engine.Open(relation.New("R", "A", "B"))
		b.ReportAllocs()
		i, rows := 0, 0
		for i < b.N {
			tx, err := db.Begin(ctx)
			if err != nil {
				b.Fatal(err)
			}
			stmt, err := tx.Prepare(engine.LangSQL, "insert into R values ($1, $2)")
			if err != nil {
				b.Fatal(err)
			}
			for j := 0; j < 256 && i < b.N; j++ {
				if _, err := stmt.Exec(ctx, i, i); err != nil {
					b.Fatal(err)
				}
				i++
				rows++
			}
			if err := tx.Commit(); err != nil {
				b.Fatal(err)
			}
			if rows >= resetAt {
				rows = 0
				if _, err := db.Exec(ctx, engine.LangSQL, "delete from R"); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkSnapshotReadUnderWrites measures a prepared point query while
// a background writer commits continuously: every commit moves the
// store generation, so each read pays the statement-cache revalidation
// (and usually a re-prepare) against the new snapshot — the worst case
// for the snapshot indirection the MVCC layer added.
func BenchmarkSnapshotReadUnderWrites(b *testing.B) {
	ctx := context.Background()
	rng := workload.Rand(23)
	r := workload.RandomBinary(rng, "R", "A", "B", 20000, 20000, 64)
	db := engine.Open(r, relation.New("W", "K"))
	const src = "select R.A, R.B from R where R.A = $1"
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		n := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := db.Exec(ctx, engine.LangSQL, "insert into W values ($1)", n); err != nil {
				b.Error(err)
				return
			}
			if n++; n%1024 == 0 {
				if _, err := db.Exec(ctx, engine.LangSQL, "delete from W"); err != nil {
					b.Error(err)
					return
				}
			}
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stmt, err := db.Prepare(engine.LangSQL, src)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := stmt.QueryAll(ctx, i%20000); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	<-done
}

// BenchmarkMatMul compares the ARC evaluation of (26) against the direct
// sparse baseline across matrix sizes.
func BenchmarkMatMul(b *testing.B) {
	for _, n := range []int{4, 8, 16} {
		rng := workload.Rand(4)
		ma := workload.SparseMatrix(rng, "A", n, 0.4)
		mb := workload.SparseMatrix(rng, "B", n, 0.4)
		cat := eval.NewCatalog().WithStandardExternals().AddRelation(ma).AddRelation(mb)
		b.Run(fmt.Sprintf("ARC/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eval.Eval(relpat.MatMul(), cat, convention.SetLogic()); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("baseline/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				workload.MatMulReference(ma, mb)
			}
		})
	}
}

// --- exec-layer micro-benchmarks ------------------------------------------

// BenchmarkExecHashJoin measures the streaming hash join against the
// nested-loop shape it replaced, across input sizes.
func BenchmarkExecHashJoin(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		rng := workload.Rand(11)
		r := workload.RandomBinary(rng, "R", "a", "b", n, n, n/4+1)
		s := workload.RandomBinary(rng, "S", "b", "c", n, n/4+1, 8)
		b.Run(fmt.Sprintf("hash/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rows := 0
				for range exec.HashJoin(exec.Scan(r), []int{1}, exec.Scan(s), []int{0}) {
					rows++
				}
				if rows == 0 {
					b.Fatal("empty join")
				}
			}
		})
		b.Run(fmt.Sprintf("nested/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rows := 0
				r.Each(func(lt relation.Tuple, _ int) {
					s.Each(func(st relation.Tuple, _ int) {
						if lt[1].Key() == st[0].Key() {
							rows++
						}
					})
				})
				if rows == 0 {
					b.Fatal("empty join")
				}
			}
		})
	}
}

// BenchmarkExecIndexJoin measures the index-probe join, whose hash table
// is cached on the relation and amortized across iterations.
func BenchmarkExecIndexJoin(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		rng := workload.Rand(12)
		r := workload.RandomBinary(rng, "R", "a", "b", n, n, n/4+1)
		s := workload.RandomBinary(rng, "S", "b", "c", n, n/4+1, 8)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rows := 0
				for range exec.IndexJoin(exec.Scan(r), []int{1}, s, []int{0}) {
					rows++
				}
				if rows == 0 {
					b.Fatal("empty join")
				}
			}
		})
	}
}

// BenchmarkRelationProbe measures a single indexed point lookup against
// the scan it replaces.
func BenchmarkRelationProbe(b *testing.B) {
	rng := workload.Rand(13)
	r := workload.RandomBinary(rng, "R", "a", "b", 10000, 10000, 100)
	probe := []value.Value{value.Int(4321)}
	b.Run("probe", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.Probe([]int{0}, probe, func(relation.Tuple, int) bool { return true })
		}
	})
	b.Run("scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.Each(func(t relation.Tuple, _ int) {
				_ = t[0].Key() == probe[0].Key()
			})
		}
	})
}

// BenchmarkExecGroupAggregate measures streaming γ.
func BenchmarkExecGroupAggregate(b *testing.B) {
	rng := workload.Rand(14)
	r := workload.RandomBinary(rng, "R", "a", "b", 10000, 200, 1000)
	aggs := []exec.Agg{{Func: exec.Count}, {Func: exec.Sum, Col: 1}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		groups := 0
		for range exec.GroupAggregate(exec.Scan(r), []int{0}, aggs, convention.SQL()) {
			groups++
		}
		if groups == 0 {
			b.Fatal("no groups")
		}
	}
}

// benchSQLBoth measures one query through both sqleval paths: the
// pre-planner enumeration baseline and the internal/plan compilation.
func benchSQLBoth(b *testing.B, src string, db sqleval.DB) {
	q := sql.MustParse(src)
	if _, err := sqleval.EvalMode(q, db, sqleval.PlanForce); err != nil {
		b.Fatalf("query fell out of the planner fragment: %v", err)
	}
	for _, m := range []struct {
		name string
		mode sqleval.PlanMode
	}{{"enum", sqleval.PlanOff}, {"plan", sqleval.PlanAuto}} {
		b.Run(m.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sqleval.EvalMode(q, db, m.mode); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSQLGroupBy measures the streamed γ against per-row grouping.
func BenchmarkSQLGroupBy(b *testing.B) {
	rng := workload.Rand(2)
	r := workload.RandomBinary(rng, "R", "A", "B", 5000, 500, 100)
	benchSQLBoth(b, "select R.A, sum(R.B) sm, count(R.B) ct from R group by R.A",
		sqleval.DB{"R": r})
}

// BenchmarkSQLInSemiJoin measures a decorrelated IN subquery against the
// per-row re-evaluation the enumeration path performs.
func BenchmarkSQLInSemiJoin(b *testing.B) {
	rng := workload.Rand(3)
	r := workload.RandomBinary(rng, "R", "A", "B", 2000, 1000, 50)
	s := workload.RandomBinary(rng, "S", "B", "C", 2000, 50, 20)
	benchSQLBoth(b, "select R.A from R where R.B in (select S.B from S where S.C = 3)",
		sqleval.DB{"R": r, "S": s})
}

// BenchmarkSQLOuterJoin measures the hashed FULL JOIN against the
// nested-pair enumeration.
func BenchmarkSQLOuterJoin(b *testing.B) {
	rng := workload.Rand(4)
	r := workload.RandomBinary(rng, "R", "A", "B", 1000, 1000, 200)
	s := workload.RandomBinary(rng, "S", "B", "C", 1000, 200, 20)
	benchSQLBoth(b, "select R.A, S.C from R full join S on R.B = S.B",
		sqleval.DB{"R": r, "S": s})
}

// BenchmarkSQLEval measures the independent SQL baseline evaluator.
func BenchmarkSQLEval(b *testing.B) {
	rng := workload.Rand(5)
	r := workload.RandomBinary(rng, "R", "A", "B", 300, 30, 100)
	db := sqleval.DB{"R": r}
	q := sql.MustParse("select R.A, sum(R.B) sm, count(R.B) c from R group by R.A having sum(R.B) > 100")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sqleval.Eval(q, db); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkValidator measures the NL2SQL validation path.
func BenchmarkValidator(b *testing.B) {
	col := relpat.MultiAggHella()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Validate(col); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHigraph measures diagram construction plus SVG rendering.
func BenchmarkHigraph(b *testing.B) {
	col := relpat.UniqueSet()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := core.HigraphOf(col)
		if err != nil {
			b.Fatal(err)
		}
		if len(g.SVG()) == 0 {
			b.Fatal("empty SVG")
		}
	}
}

// BenchmarkCanonicalForm measures pattern canonicalization (the pattern-
// equality primitive).
func BenchmarkCanonicalForm(b *testing.B) {
	col := relpat.UniqueSet()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if pattern.Canonical(col) == "" {
			b.Fatal("empty canonical form")
		}
	}
}

// BenchmarkExpandAbstract measures module inlining (Section 2.13.2).
func BenchmarkExpandAbstract(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rewrite.ExpandAbstract(relpat.UniqueSetModular(), relpat.SubsetAbstract()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDatalogFixpoint measures the Datalog engine on ancestor
// closure over a chain.
func BenchmarkDatalogFixpoint(b *testing.B) {
	prog := datalog.MustParse("A(x,y) :- P(x,y). A(x,y) :- P(x,z), A(z,y).")
	p := workload.Chain(30)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := datalog.EvalPredicate(prog, datalog.EDB{"P": p}, "A"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDifferentialPipeline measures one full differential trial:
// generate → parse → translate → evaluate through both engines.
func BenchmarkDifferentialPipeline(b *testing.B) {
	rng := workload.Rand(99)
	inst := qgen.RandomInstance(rng, 10, false)
	db := sqleval.DB{}
	cat := eval.NewCatalog()
	for _, r := range inst.Relations() {
		db[r.Name()] = r
		cat.AddRelation(r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := qgen.Generate(rng)
		want, err := sqleval.EvalString(src, db)
		if err != nil {
			b.Fatal(err)
		}
		col, err := sql2arc.TranslateString(src)
		if err != nil {
			b.Fatal(err)
		}
		got, err := eval.Eval(col, cat, convention.SQL())
		if err != nil {
			b.Fatal(err)
		}
		if !got.EqualBag(want) {
			b.Fatalf("divergence on %s", src)
		}
	}
}

// BenchmarkWALCommit measures the durable autocommit path: each
// iteration is one INSERT whose write set is journaled to the WAL before
// the commit is acknowledged, with and without fsync — the gap is the
// price of the kill -9 guarantee.
func BenchmarkWALCommit(b *testing.B) {
	ctx := context.Background()
	for _, fsync := range []bool{false, true} {
		name := "nofsync"
		if fsync {
			name = "fsync"
		}
		b.Run(name, func(b *testing.B) {
			db, err := engine.OpenDurable(b.TempDir(), storage.Options{Fsync: fsync},
				relation.New("R", "A", "B"))
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			stmt, err := db.Prepare(engine.LangSQL, "insert into R values ($1, $2)")
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := stmt.Exec(ctx, i, i); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWALColdStartReplay measures recovery: each iteration reopens
// a storage directory whose state is one checkpoint plus a 2000-commit
// WAL, replaying the log to the last committed generation.
func BenchmarkWALColdStartReplay(b *testing.B) {
	ctx := context.Background()
	dir := b.TempDir()
	db, err := engine.OpenDurable(dir, storage.Options{}, relation.New("R", "A", "B"))
	if err != nil {
		b.Fatal(err)
	}
	stmt, err := db.Prepare(engine.LangSQL, "insert into R values ($1, $2)")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if _, err := stmt.Exec(ctx, i, i); err != nil {
			b.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db2, err := engine.OpenDurable(dir, storage.Options{})
		if err != nil {
			b.Fatal(err)
		}
		rs, _ := db2.RecoveryStats()
		if rs.Records != 2000 {
			b.Fatalf("replayed %d records, want 2000", rs.Records)
		}
		db2.Close()
	}
}

// BenchmarkRangeScanVsFullScan pins the planner's range lowering on a
// 100k-row relation: the "rangescan" variant's BETWEEN-style conjuncts
// lower to an ordered-index RangeScan touching ~100 rows; the
// "fullscan" variant computes the same rows through a semantically
// identical predicate (A + 0 defeats the lowering) and pays the full
// filtered scan.
func BenchmarkRangeScanVsFullScan(b *testing.B) {
	ctx := context.Background()
	const rows = 100_000
	r := relation.New("R", "A", "B")
	for i := 0; i < rows; i++ {
		r.Add(i, i%997)
	}
	db := engine.Open(r)
	run := func(src string, wantRange bool) func(*testing.B) {
		return func(b *testing.B) {
			stmt, err := db.Prepare(engine.LangSQL, src)
			if err != nil {
				b.Fatal(err)
			}
			if text, err := stmt.Explain(); err != nil ||
				strings.Contains(text, "RangeScan") != wantRange {
				b.Fatalf("Explain (err=%v, wantRange=%v):\n%s", err, wantRange, text)
			}
			// Warm once so the lazy ordered-index build is not billed to
			// the first iteration.
			if _, err := stmt.QueryAll(ctx, 50_000, 50_100); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := stmt.QueryAll(ctx, 50_000, 50_100)
				if err != nil {
					b.Fatal(err)
				}
				if res.Card() != 100 {
					b.Fatalf("rows = %d, want 100", res.Card())
				}
			}
		}
	}
	b.Run("rangescan", run("select R.A, R.B from R where R.A >= $1 and R.A < $2", true))
	b.Run("fullscan", run("select R.A, R.B from R where R.A + 0 >= $1 and R.A + 0 < $2", false))
}

// TestRangeScanSpeedup is the acceptance gate behind
// BenchmarkRangeScanVsFullScan: on the 100k-row selective range, the
// lowered RangeScan must beat the filtered full scan by at least 10×.
// The observed gap is ~300×, so the 10× floor leaves room for load
// noise without ever passing a broken lowering.
func TestRangeScanSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	ctx := context.Background()
	const rows = 100_000
	r := relation.New("R", "A", "B")
	for i := 0; i < rows; i++ {
		r.Add(i, i%997)
	}
	db := engine.Open(r)
	timeQuery := func(src string) time.Duration {
		t.Helper()
		stmt, err := db.Prepare(engine.LangSQL, src)
		if err != nil {
			t.Fatal(err)
		}
		// Warm: ordered-index build and any lazy state.
		if _, err := stmt.QueryAll(ctx, 50_000, 50_100); err != nil {
			t.Fatal(err)
		}
		const iters = 20
		start := time.Now()
		for i := 0; i < iters; i++ {
			res, err := stmt.QueryAll(ctx, 50_000, 50_100)
			if err != nil {
				t.Fatal(err)
			}
			if res.Card() != 100 {
				t.Fatalf("rows = %d, want 100", res.Card())
			}
		}
		return time.Since(start) / iters
	}
	ranged := timeQuery("select R.A, R.B from R where R.A >= $1 and R.A < $2")
	full := timeQuery("select R.A, R.B from R where R.A + 0 >= $1 and R.A + 0 < $2")
	t.Logf("rangescan %v/query, fullscan %v/query (%.0fx)", ranged, full, float64(full)/float64(ranged))
	if full < 10*ranged {
		t.Fatalf("RangeScan is only %.1fx faster than the full scan, want >= 10x (range %v, full %v)",
			float64(full)/float64(ranged), ranged, full)
	}
}

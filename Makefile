# Mirrors .github/workflows/ci.yml so local runs and CI stay in sync.

GO ?= go

# Benchmark-regression gate (same knobs as CI).
BENCH_PATTERN ?= Join|Fixpoint|Group|Recursion|RecursiveCTE|Prepared|Concurrent|Server|InsertThroughput|SnapshotRead|Traced|WAL|Range
BENCH_WARN ?= 15
BENCH_FAIL ?= 50

# Fuzz-smoke knobs (same as CI's fuzz-smoke job).
FUZZ_TIME ?= 20s
ENGINE_FUZZ_TARGETS ?= FuzzPrepareSQL FuzzPrepareARC FuzzPrepareDatalog FuzzExecSQL FuzzExecFactOps

.PHONY: all build test bench lint arcvet fuzz-smoke benchdiff bench-baseline

all: lint build test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...
	$(GO) test -race -parallel 8 -count=1 ./internal/engine ./internal/relation

# One iteration of every benchmark (including the E01–E21 experiment
# harness): the CI smoke pass. Use `go test -bench=<pattern> .` directly
# for real measurements.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

lint:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi
	$(MAKE) arcvet

# The engine's own invariant suite (docs/INVARIANTS.md): snapimmut,
# hookreentry, boundaryguard, cancelpoll, errcmp. Built as a vet tool so
# the standard driver handles package loading and caching.
arcvet:
	$(GO) build -o bin/arcvet ./cmd/arcvet
	$(GO) vet -vettool=bin/arcvet ./...

# Run every fuzz target briefly — the CI smoke pass that keeps the
# corpora exercised on every PR without paying for a long campaign.
fuzz-smoke:
	@for t in $(ENGINE_FUZZ_TARGETS); do \
		echo "== $$t"; \
		$(GO) test -run '^$$' -fuzz "^$${t}\$$" -fuzztime $(FUZZ_TIME) ./internal/engine || exit 1; \
	done
	$(GO) test -run '^$$' -fuzz '^FuzzServerFrames$$' -fuzztime $(FUZZ_TIME) ./internal/server

# Run the gated benchmarks and compare against the committed baseline —
# the local twin of CI's bench-regression job.
benchdiff:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime=100ms -count=3 . | \
		$(GO) run ./cmd/benchdiff parse -out /tmp/benchdiff-new.json
	$(GO) run ./cmd/benchdiff compare -baseline bench/baseline.json \
		-new /tmp/benchdiff-new.json -match '$(BENCH_PATTERN)' \
		-warn $(BENCH_WARN) -fail $(BENCH_FAIL)

# Refresh the committed baseline from this machine.
bench-baseline:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime=100ms -count=3 . | \
		$(GO) run ./cmd/benchdiff parse -out bench/baseline.json

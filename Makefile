# Mirrors .github/workflows/ci.yml so local runs and CI stay in sync.

GO ?= go

# Benchmark-regression gate (same knobs as CI).
BENCH_PATTERN ?= Join|Fixpoint|Group|Recursion|RecursiveCTE|Prepared|Concurrent|Server|InsertThroughput|SnapshotRead|Traced|WAL|Range
BENCH_WARN ?= 15
BENCH_FAIL ?= 50

.PHONY: all build test bench lint benchdiff bench-baseline

all: lint build test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...
	$(GO) test -race -parallel 8 -count=1 ./internal/engine ./internal/relation

# One iteration of every benchmark (including the E01–E21 experiment
# harness): the CI smoke pass. Use `go test -bench=<pattern> .` directly
# for real measurements.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

lint:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

# Run the gated benchmarks and compare against the committed baseline —
# the local twin of CI's bench-regression job.
benchdiff:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime=100ms -count=3 . | \
		$(GO) run ./cmd/benchdiff parse -out /tmp/benchdiff-new.json
	$(GO) run ./cmd/benchdiff compare -baseline bench/baseline.json \
		-new /tmp/benchdiff-new.json -match '$(BENCH_PATTERN)' \
		-warn $(BENCH_WARN) -fail $(BENCH_FAIL)

# Refresh the committed baseline from this machine.
bench-baseline:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime=100ms -count=3 . | \
		$(GO) run ./cmd/benchdiff parse -out bench/baseline.json

# Mirrors .github/workflows/ci.yml so local runs and CI stay in sync.

GO ?= go

.PHONY: all build test bench lint

all: lint build test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# One iteration of every benchmark (including the E01–E21 experiment
# harness): the CI smoke pass. Use `go test -bench=<pattern> .` directly
# for real measurements.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

lint:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi
	$(GO) vet ./...

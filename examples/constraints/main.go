// Constraints shows ARC sentences as integrity constraints (Section 2.5,
// Fig 9): Boolean statements with aggregate comparison predicates are
// first-class in ARC — where SQL can only return a unary truth-value
// relation — and can be checked against a database under any convention.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	// Inventory schema: Orders(id, qty) must be coverable by
	// Shipments(id, item): every order's qty must not exceed the number
	// of shipped items for that order.
	orders := core.NewRelation("R", "id", "q").Add(1, 2).Add(2, 1)
	shipments := core.NewRelation("S", "id", "d").
		Add(1, "a").Add(1, "b"). // order 1: 2 items, qty 2 ✓
		Add(2, "c")              // order 2: 1 item,  qty 1 ✓
	cat := core.NewCatalog().AddRelation(orders).AddRelation(shipments)

	// (14): "no order demands more than was shipped" — a constraint.
	constraint, err := parseSentence(
		"¬(∃r ∈ R [∃s ∈ S, γ ∅ [r.id = s.id ∧ r.q > count(s.d)]])")
	if err != nil {
		log.Fatal(err)
	}
	// (13): "some order is fully covered" — a plain Boolean query.
	someCovered, err := parseSentence(
		"∃r ∈ R [∃s ∈ S, γ ∅ [r.id = s.id ∧ r.q <= count(s.d)]]")
	if err != nil {
		log.Fatal(err)
	}

	check := func(label string) {
		c, _ := core.EvalSentence(constraint, cat, core.SetLogic())
		q, _ := core.EvalSentence(someCovered, cat, core.SetLogic())
		fmt.Printf("%-28s constraint (14) holds: %-5v   query (13) holds: %v\n", label, c, q)
	}

	check("consistent database:")

	// Violate the constraint: order 3 wants 5, nothing shipped... but
	// note the subtlety the paper's γ∅ makes visible: an order with NO
	// shipments still forms one (empty) group, so count = 0 < qty and
	// the violation is caught — the same structure that makes COUNT-bug
	// version 1 correct.
	orders.Add(3, 5)
	check("after adding order(3, qty=5):")

	// The aggregate used as a *test* (comparison predicate) vs as a
	// *value* (assignment predicate) is exactly the distinction the
	// paper's vocabulary names; the ALT shows it directly:
	fmt.Println("\nALT of the constraint (aggregate as comparison predicate):")
	fmt.Println(constraint.String())
}

func parseSentence(src string) (*core.Sentence, error) {
	_, s, err := core.ParseARC(src)
	if err != nil {
		return nil, err
	}
	return s, nil
}

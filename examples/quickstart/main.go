// Quickstart: parse an ARC query in comprehension syntax, validate it,
// look at all three modalities, and evaluate it against an in-memory
// catalog — the five-minute tour of the library.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	// A catalog with two base relations, in the named perspective.
	cat := core.NewCatalog().
		AddRelation(core.NewRelation("R", "A", "B").
			Add(1, 10).Add(2, 20).Add(3, 30)).
		AddRelation(core.NewRelation("S", "B", "C").
			Add(10, 0).Add(20, 5).Add(30, 0))

	// Paper query (1), in ARC comprehension syntax. The ASCII spelling
	// "exists r in R ... and ..." works too.
	col, err := core.ParseARCCollection(
		"{Q(A) | ∃r ∈ R, s ∈ S [Q.A = r.A ∧ r.B = s.B ∧ s.C = 0]}")
	if err != nil {
		log.Fatal(err)
	}

	// Validation = the machine-facing checks an NL2SQL system would run:
	// scoping, clean heads, grouping legality.
	if _, err := core.Validate(col); err != nil {
		log.Fatal(err)
	}

	fmt.Println("— comprehension modality —")
	fmt.Println(col.String())

	fmt.Println("\n— ALT modality (Fig 2a) —")
	fmt.Print(core.ALT(col))

	fmt.Println("\n— higraph modality (Fig 2b) —")
	g, err := core.HigraphOf(col)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(g.ASCII())

	fmt.Println("\n— evaluation (set-logic conventions) —")
	res, err := core.Eval(col, cat, core.SetLogic())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.String())

	// The same intent, arriving as SQL: translate, compare patterns.
	fromSQL, err := core.FromSQL("select R.A from R, S where R.B = S.B and S.C = 0")
	if err != nil {
		log.Fatal(err)
	}
	sigA, _ := core.PatternSignature(col)
	sigB, _ := core.PatternSignature(fromSQL)
	fmt.Printf("\npattern similarity ARC vs SQL translation: %.2f\n",
		core.PatternSimilarity(sigA, sigB))
}

// Countbug reproduces Section 3.2 end to end: the three decorrelation
// variants of Fig 21 evaluated on the bug-revealing instance, their ALT
// differences, and the pattern lint that names the bug — the paper's
// point that an explicit vocabulary (aggregate as assignment vs as test,
// γ∅ vs keyed grouping, correlation) lets tools diagnose the rewrite.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

var versions = []struct {
	name string
	sql  string
}{
	{"version 1 (correlated scalar)", `select R.id from R
		where R.q = (select count(S.d) from S where S.id = R.id)`},
	{"version 2 (GROUP BY rewrite — the bug)", `select R.id from R,
		(select S.id, count(S.d) as ct from S group by S.id) as X
		where R.q = X.ct and R.id = X.id`},
	{"version 3 (left-join fix)", `select R.id from R,
		(select R2.id, count(S.d) as ct from R R2 left join S on R2.id = S.id group by R2.id) as X
		where R.q = X.ct and R.id = X.id`},
}

func main() {
	// The paper's instance: R(9,0) and an empty S.
	r := core.NewRelation("R", "id", "q").Add(9, 0)
	s := core.NewRelation("S", "id", "d")
	cat := core.NewCatalog().AddRelation(r).AddRelation(s)

	for _, v := range versions {
		col, err := core.FromSQL(v.sql)
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.Eval(col, cat, core.SQLDistinct())
		if err != nil {
			log.Fatal(err)
		}
		cls, _ := core.ClassifyAggregation(col)
		findings, _ := core.LintCountBug(col)
		fmt.Printf("=== %s ===\n", v.name)
		fmt.Printf("aggregation pattern: %s\n", cls)
		fmt.Printf("result on R(9,0), S=∅: %d row(s)\n", res.Card())
		if res.Card() > 0 {
			fmt.Print(res.String())
		}
		if len(findings) > 0 {
			for _, f := range findings {
				fmt.Println("LINT:", f)
			}
		} else {
			fmt.Println("lint: clean")
		}
		fmt.Println()
	}

	fmt.Println("The decisive structural difference, in the ALT modality:")
	v1, _ := core.FromSQL(versions[0].sql)
	fmt.Println("version 1 — the aggregate is computed in a correlated γ∅ scope")
	fmt.Print(core.ALT(v1))
}

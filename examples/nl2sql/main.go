// Nl2sql demonstrates ARC/ALT as the intermediate target the paper
// proposes for NL2SQL systems (Sections 4–5): a generator produces
// candidate ALTs (here: a mix of correct trees and trees with typical
// machine-generation faults), the validator accepts only the structurally
// sound ones, and the accepted trees render to SQL — so intent is checked
// at the semantic-structure level before any SQL text exists.
package main

import (
	"fmt"
	"log"

	"repro/internal/alt"
	"repro/internal/core"
)

// candidate is one machine-generated query hypothesis.
type candidate struct {
	name string
	col  *core.Collection
}

func main() {
	// "Natural-language request": total salary per department, for
	// departments with more than one employee.
	// Schema: Emp(name, dept, sal).
	candidates := generate()

	cat := core.NewCatalog().
		AddRelation(core.NewRelation("Emp", "name", "dept", "sal").
			Add("ann", "eng", 120).Add("bob", "eng", 100).Add("carol", "ops", 90))

	accepted := 0
	for _, c := range candidates {
		fmt.Printf("=== candidate: %s ===\n", c.name)
		if _, err := core.Validate(c.col); err != nil {
			fmt.Println("REJECTED by validator:", err)
			fmt.Println()
			continue
		}
		accepted++
		sqlText, err := core.ToSQL(c.col)
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.Eval(c.col, cat, core.SQLDistinct())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("ACCEPTED — rendered SQL:", sqlText)
		fmt.Print(res.String())
		fmt.Println()
	}
	fmt.Printf("%d/%d candidates passed structural validation\n", accepted, len(candidates))
}

// generate simulates an NL2SQL model emitting ALTs: one correct tree and
// three with the fault classes the paper's validator vocabulary names
// (unbound variable, missing grouping operator, dirty head).
func generate() []candidate {
	correct := alt.Col("Q", []string{"dept", "total"},
		alt.ExistsG([]*alt.Binding{alt.Bind("e", "Emp")},
			[]*alt.AttrRef{alt.Ref("e", "dept")},
			alt.AndF(
				alt.Eq(alt.Ref("Q", "dept"), alt.Ref("e", "dept")),
				alt.Eq(alt.Ref("Q", "total"), alt.Sum(alt.Ref("e", "sal"))),
				alt.Gt(alt.Count(alt.Ref("e", "name")), alt.CInt(1)),
			)))

	unbound := alt.Col("Q", []string{"dept", "total"},
		alt.ExistsG([]*alt.Binding{alt.Bind("e", "Emp")},
			[]*alt.AttrRef{alt.Ref("e", "dept")},
			alt.AndF(
				alt.Eq(alt.Ref("Q", "dept"), alt.Ref("e", "dept")),
				alt.Eq(alt.Ref("Q", "total"), alt.Sum(alt.Ref("emp2", "sal"))), // hallucinated variable
			)))

	noGamma := alt.Col("Q", []string{"dept", "total"},
		alt.Exists([]*alt.Binding{alt.Bind("e", "Emp")}, // aggregate without γ
			alt.AndF(
				alt.Eq(alt.Ref("Q", "dept"), alt.Ref("e", "dept")),
				alt.Eq(alt.Ref("Q", "total"), alt.Sum(alt.Ref("e", "sal"))),
			)))

	dirtyHead := alt.Col("Q", []string{"dept", "total"},
		alt.ExistsG([]*alt.Binding{alt.Bind("e", "Emp")},
			[]*alt.AttrRef{alt.Ref("e", "dept")},
			alt.AndF(
				alt.Eq(alt.Ref("Q", "dept"), alt.Ref("e", "dept")),
				alt.Eq(alt.Ref("Q", "total"), alt.Sum(alt.Ref("e", "sal"))),
				alt.Gt(alt.Ref("Q", "total"), alt.CInt(100)), // head used as a filter
			)))

	return []candidate{
		{"correct grouped aggregate", correct},
		{"hallucinated variable", unbound},
		{"missing grouping operator", noGamma},
		{"head attribute used in comparison", dirtyHead},
	}
}

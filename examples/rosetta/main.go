// Rosetta shows ARC as the paper's "Rosetta Stone": the same two intents
// expressed in four languages — SQL, Datalog, textbook TRC, and ARC
// itself — all meeting in one ALT and one answer, with conventions
// switched independently of the query (Section 2.6).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	// ---- Intent 1: ancestors (recursion) --------------------------------
	parent := core.NewRelation("P", "s", "t").Add(1, 2).Add(2, 3).Add(3, 4)
	cat := core.NewCatalog().AddRelation(parent)

	// Datalog.
	const datalogSrc = `
		A(x,y) :- P(x,y).
		A(x,y) :- P(x,z), A(z,y).
	`
	dlRes, err := core.EvalDatalog(datalogSrc, "A", parent)
	if err != nil {
		log.Fatal(err)
	}

	// The same program translated into ARC (named perspective, one
	// definition, disjunction instead of two rules — Section 2.9).
	fromDL, err := core.FromDatalog(datalogSrc,
		map[string][]string{"P": {"s", "t"}, "A": {"s", "t"}}, "A")
	if err != nil {
		log.Fatal(err)
	}

	// ARC directly (query (16)).
	arcDirect, err := core.ParseARCCollection(
		"{A(s, t) | ∃p ∈ P [A.s = p.s ∧ A.t = p.t] ∨ ∃p ∈ P, a2 ∈ A [A.s = p.s ∧ p.t = a2.s ∧ A.t = a2.t]}")
	if err != nil {
		log.Fatal(err)
	}

	r1, _ := core.Eval(fromDL, cat, core.Souffle())
	r2, _ := core.Eval(arcDirect, cat, core.Souffle())
	fmt.Println("— intent 1: ancestors —")
	fmt.Printf("Datalog engine: %d facts; Datalog→ARC: %d; ARC (16): %d; all equal: %v\n\n",
		dlRes.Card(), r1.Card(), r2.Card(), r1.EqualSet(dlRes) && r2.EqualSet(dlRes))

	// ---- Intent 2: filtered join, four surface syntaxes ------------------
	cat2 := core.NewCatalog().
		AddRelation(core.NewRelation("R", "A", "B").Add(1, 10).Add(2, 20).Add(3, 30)).
		AddRelation(core.NewRelation("S", "B", "C").Add(10, 0).Add(20, 5).Add(30, 0))

	fromSQL, err := core.FromSQL("select R.A from R, S where R.B = S.B and S.C = 0")
	if err != nil {
		log.Fatal(err)
	}
	fromTRC, err := core.ParseTRC("{r.A | r ∈ R ∧ ∃s[r.B = s.B ∧ s.C = 0 ∧ s ∈ S]}")
	if err != nil {
		log.Fatal(err)
	}
	fromARC, err := core.ParseARCCollection(
		"{Q(A) | ∃r ∈ R, s ∈ S [Q.A = r.A ∧ r.B = s.B ∧ s.C = 0]}")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("— intent 2: the same relational pattern from three front ends —")
	sigs := map[string]*core.Signature{}
	for name, col := range map[string]*core.Collection{
		"SQL": fromSQL, "TRC": fromTRC, "ARC": fromARC,
	} {
		res, err := core.Eval(col, cat2, core.SetLogic())
		if err != nil {
			log.Fatal(name, ": ", err)
		}
		sig, _ := core.PatternSignature(col)
		sigs[name] = sig
		fmt.Printf("%-4s rows=%d signature=%s\n", name, res.Card(), sig)
	}
	fmt.Printf("similarity SQL↔TRC: %.2f, SQL↔ARC: %.2f\n\n",
		core.PatternSimilarity(sigs["SQL"], sigs["TRC"]),
		core.PatternSimilarity(sigs["SQL"], sigs["ARC"]))

	// ---- Conventions: one query, two environments (Section 2.6) ---------
	rConv := core.NewRelation("R", "ak", "b").Add(1, 2)
	sConv := core.NewRelation("S", "a", "b") // empty
	catConv := core.NewCatalog().AddRelation(rConv).AddRelation(sConv)
	q, err := core.ParseARCCollection(
		"{Q(ak, sm) | ∃r ∈ R, x ∈ {X(sm) | ∃s ∈ S, γ ∅ [s.a < r.ak ∧ X.sm = sum(s.b)]} [Q.ak = r.ak ∧ Q.sm = x.sm]}")
	if err != nil {
		log.Fatal(err)
	}
	souffle, _ := core.Eval(q, catConv, core.Souffle())
	sqlish, _ := core.Eval(q, catConv, core.SQLDistinct())
	fmt.Println("— conventions: same query text, two environments —")
	fmt.Println("Soufflé conventions (sum ∅ = 0):")
	fmt.Print(souffle.String())
	fmt.Println("SQL conventions (sum ∅ = NULL):")
	fmt.Print(sqlish.String())
}
